package wire

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

// pipeCodec builds two codecs over an in-memory duplex pipe.
func pipeCodec() (*Codec, *Codec, func()) {
	a, b := net.Pipe()
	return NewCodec(a), NewCodec(b), func() { a.Close(); b.Close() }
}

func TestSendRecvRoundTrip(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	want := &Message{
		Type: MsgFeatures, StoreID: "ps-1", Run: 2,
		Rows: 2, Cols: 3,
		X:      []float64{1, 2, 3, 4, 5, 6},
		Labels: []int{0, 1},
		IDs:    []uint64{10, 11},
		Final:  true,
	}
	go func() {
		if err := ca.Send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.StoreID != want.StoreID || got.Run != want.Run || !got.Final {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestUntypedMessageRejected(t *testing.T) {
	ca, _, done := pipeCodec()
	defer done()
	if err := ca.Send(&Message{}); err == nil {
		t.Fatal("untyped message must be rejected")
	}
}

func TestSendError(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	go func() { _ = ca.SendError("ps-2", io.ErrUnexpectedEOF) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgError || got.StoreID != "ps-2" || got.Err == "" {
		t.Fatalf("error message = %+v", got)
	}
}

func TestConcurrentSendersDoNotInterleave(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	for s := 0; s < 2; s++ {
		s := s
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = ca.Send(&Message{Type: MsgAck, Run: s*1000 + i})
			}
		}()
	}
	seen := map[int]bool{}
	for i := 0; i < 2*n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Run] {
			t.Fatalf("duplicate message %d", m.Run)
		}
		seen[m.Run] = true
	}
	wg.Wait()
	if len(seen) != 2*n {
		t.Fatalf("received %d unique messages", len(seen))
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, mt := range []MsgType{MsgHello, MsgTrainRequest, MsgFeatures, MsgModelDelta, MsgInferRequest, MsgLabels, MsgAck, MsgError, MsgSpans, MsgPing, MsgPong} {
		if mt.String() == "" {
			t.Fatalf("empty name for %d", mt)
		}
	}
	if MsgType(200).String() != "msgtype(200)" {
		t.Fatal("unknown type rendering")
	}
}

// The round-epoch tag survives the codec, and an untagged (pre-epoch) peer
// message decodes to epoch 0.
func TestEpochRoundTripAndLegacyZero(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	go func() {
		_ = ca.Send(&Message{Type: MsgPing, Epoch: 7})
		_ = ca.Send(&Message{Type: MsgPong}) // untagged
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgPing || got.Epoch != 7 {
		t.Fatalf("ping = %+v, want epoch 7", got)
	}
	got, err = cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 0 {
		t.Fatalf("untagged message decoded with epoch %d", got.Epoch)
	}
}

// Property: any message with LabelsOut maps survives a round trip through a
// buffered stream.
func TestCodecProperty(t *testing.T) {
	f := func(ids []uint64, labels []int16) bool {
		m := &Message{Type: MsgLabels, LabelsOut: map[uint64]int{}}
		for i, id := range ids {
			if i < len(labels) {
				m.LabelsOut[id] = int(labels[i])
			}
		}
		var buf bytes.Buffer
		c := NewCodec(&buf)
		if err := c.Send(m); err != nil {
			return false
		}
		got, err := c.Recv()
		if err != nil {
			return false
		}
		if len(got.LabelsOut) != len(m.LabelsOut) {
			return false
		}
		for k, v := range m.LabelsOut {
			if got.LabelsOut[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvOnClosedConn(t *testing.T) {
	a, b := net.Pipe()
	cb := NewCodec(b)
	a.Close()
	if _, err := cb.Recv(); err == nil {
		t.Fatal("recv on closed conn must error")
	}
}
