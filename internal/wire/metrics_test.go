package wire

import (
	"bytes"
	"sync"
	"testing"

	"ndpipe/internal/telemetry"
)

func TestSendErrorNilDoesNotPanic(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	go func() { _ = ca.SendError("ps-3", nil) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgError || got.Err != "unknown error" {
		t.Fatalf("nil-error report = %+v, want Err=%q", got, "unknown error")
	}
}

// Two goroutines hammer Send on one codec while a reader drains: with -race
// this proves write serialization, and the payload checksum proves frames
// are never interleaved or corrupted.
func TestConcurrentSendersPayloadIntegrity(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	const n = 100
	payload := func(seq int) []float64 {
		x := make([]float64, 32)
		for i := range x {
			x[i] = float64(seq*1000 + i)
		}
		return x
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				seq := w*n + i
				if err := ca.Send(&Message{Type: MsgFeatures, Run: seq, X: payload(seq)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	seen := map[int]bool{}
	for i := 0; i < 2*n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Run] {
			t.Fatalf("duplicate frame %d", m.Run)
		}
		seen[m.Run] = true
		want := payload(m.Run)
		if len(m.X) != len(want) {
			t.Fatalf("frame %d: %d floats, want %d", m.Run, len(m.X), len(want))
		}
		for j := range want {
			if m.X[j] != want[j] {
				t.Fatalf("frame %d corrupted at %d: %v != %v", m.Run, j, m.X[j], want[j])
			}
		}
	}
	wg.Wait()
}

func TestCodecMetrics(t *testing.T) {
	sentBefore := telemetry.Default.Counter(telemetry.Labeled("wire_send_total", "type", "ack")).Value()
	recvBefore := telemetry.Default.Counter(telemetry.Labeled("wire_recv_total", "type", "ack")).Value()
	bytesBefore := telemetry.Default.Counter("wire_sent_bytes_total").Value()

	var buf bytes.Buffer
	c := NewCodec(&buf)
	if err := c.Send(&Message{Type: MsgAck, StoreID: "ps-0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}

	if d := telemetry.Default.Counter(telemetry.Labeled("wire_send_total", "type", "ack")).Value() - sentBefore; d != 1 {
		t.Fatalf("send counter advanced by %d, want 1", d)
	}
	if d := telemetry.Default.Counter(telemetry.Labeled("wire_recv_total", "type", "ack")).Value() - recvBefore; d != 1 {
		t.Fatalf("recv counter advanced by %d, want 1", d)
	}
	if d := telemetry.Default.Counter("wire_sent_bytes_total").Value() - bytesBefore; d <= 0 {
		t.Fatalf("sent bytes advanced by %d, want > 0", d)
	}
}
