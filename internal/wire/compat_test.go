package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// oldMessage mirrors the pre-encoding Message shape: no DeltaEncoding
// field. Gob matches fields by name, so encoding/decoding across the two
// shapes is exactly what happens when a pre-encoding binary talks to a
// current one.
type oldMessage struct {
	Type         MsgType
	StoreID      string
	Blob         []byte
	ModelVersion int
	Rebase       bool
}

// TestDeltaEncodingOldPeerFallback pins the interop contract for the
// DeltaEncoding field: an old peer that never heard of encodings must (a)
// decode a modern message without error, simply dropping the field, and (b)
// have its own messages decode with DeltaEncoding == 0 — the legacy dense
// codec — on a modern peer.
func TestDeltaEncodingOldPeerFallback(t *testing.T) {
	// Modern → old: the field is silently dropped, everything else lands.
	var buf bytes.Buffer
	modern := Message{
		Type: MsgModelDelta, StoreID: "ps-0",
		Blob: []byte{2, 1, 1}, ModelVersion: 7, DeltaEncoding: 2,
	}
	if err := gob.NewEncoder(&buf).Encode(&modern); err != nil {
		t.Fatal(err)
	}
	var old oldMessage
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer must decode a modern message: %v", err)
	}
	if old.Type != MsgModelDelta || old.ModelVersion != 7 || !bytes.Equal(old.Blob, modern.Blob) {
		t.Fatalf("old peer saw %+v, want the non-encoding fields intact", old)
	}

	// Old → modern: the absent field decodes to 0, the dense codec.
	buf.Reset()
	hello := oldMessage{Type: MsgHello, StoreID: "ps-1", ModelVersion: 3}
	if err := gob.NewEncoder(&buf).Encode(&hello); err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("modern peer must decode an old message: %v", err)
	}
	if got.DeltaEncoding != 0 {
		t.Fatalf("old peer's hello decoded with DeltaEncoding %d, want 0 (dense)",
			got.DeltaEncoding)
	}
	if got.Type != MsgHello || got.ModelVersion != 3 {
		t.Fatalf("decoded %+v, want hello fields intact", got)
	}
}

// TestDeltaEncodingCodecRoundTrip: the field survives the framed codec in
// both Hello (advertise) and ModelDelta (stamp) positions.
func TestDeltaEncodingCodecRoundTrip(t *testing.T) {
	ca, cb, done := pipeCodec()
	defer done()
	go func() {
		_ = ca.Send(&Message{Type: MsgHello, DeltaEncoding: 1})
		_ = ca.Send(&Message{Type: MsgModelDelta, DeltaEncoding: 2})
		_ = ca.Send(&Message{Type: MsgModelDelta}) // legacy dense stamp
	}()
	for _, want := range []uint8{1, 2, 0} {
		got, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.DeltaEncoding != want {
			t.Fatalf("DeltaEncoding = %d, want %d", got.DeltaEncoding, want)
		}
	}
}
