// Package wire is the TCP protocol between the Tuner and its PipeStores:
// gob-encoded, self-delimiting messages over a persistent connection. It
// carries the whole FT-DMP conversation — training requests, fp16-style
// feature batches, Check-N-Run model deltas, offline-inference requests and
// label results.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"ndpipe/internal/telemetry"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgHello          MsgType = iota + 1 // store → tuner: registration
	MsgTrainRequest                      // tuner → store: start FT-DMP feature extraction
	MsgFeatures                          // store → tuner: one feature batch
	MsgModelDelta                        // tuner → store: Check-N-Run delta broadcast
	MsgInferRequest                      // tuner → store: run offline inference
	MsgLabels                            // store → tuner: offline-inference results
	MsgAck                               // either direction: acknowledgement
	MsgError                             // either direction: failure report
	MsgSpans                             // store → tuner: finished trace spans for stitching
	MsgPing                              // tuner → store: liveness probe (silent-death detection)
	MsgPong                              // store → tuner: liveness reply, echoing the ping's epoch
	MsgMetrics                           // store → tuner: registry snapshot for the fleet aggregator
	MsgWALAppend                         // leader → standby: one durable WAL record (or bootstrap seed)
	MsgWALAck                            // standby → leader: record applied and locally durable
	MsgStandbyHello                      // standby → leader: replication-channel registration
	MsgObjectPut                         // tuner → store: store replicated/repaired photo objects
	MsgObjectFetch                       // tuner → store: fetch photo objects by ID
	MsgObjects                           // store → tuner: photo object payloads (chunked, Final-terminated)
	MsgScrubQuery                        // tuner → store: report quarantined objects
	MsgScrubReport                       // store → tuner: quarantined IDs awaiting repair
	MsgRebuildRequest                    // tuner → store: re-replicate a dead member's objects
)

// lastMsgType is the highest defined MsgType; the per-type metric arrays
// are sized off it.
const lastMsgType = MsgRebuildRequest

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgTrainRequest:
		return "train-request"
	case MsgFeatures:
		return "features"
	case MsgModelDelta:
		return "model-delta"
	case MsgInferRequest:
		return "infer-request"
	case MsgLabels:
		return "labels"
	case MsgAck:
		return "ack"
	case MsgError:
		return "error"
	case MsgSpans:
		return "spans"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgMetrics:
		return "metrics"
	case MsgWALAppend:
		return "wal-append"
	case MsgWALAck:
		return "wal-ack"
	case MsgStandbyHello:
		return "standby-hello"
	case MsgObjectPut:
		return "object-put"
	case MsgObjectFetch:
		return "object-fetch"
	case MsgObjects:
		return "objects"
	case MsgScrubQuery:
		return "scrub-query"
	case MsgScrubReport:
		return "scrub-report"
	case MsgRebuildRequest:
		return "rebuild-request"
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is the single envelope exchanged on the wire. Only the fields
// relevant to Type are populated.
type Message struct {
	Type    MsgType
	StoreID string

	// Trace context, carried on every traced message. The zero values mean
	// "untraced", which is also what a pre-tracing peer's messages decode
	// to (gob leaves absent fields zero), so old and new nodes interoperate.
	Trace  telemetry.TraceID // trace this message belongs to
	Parent telemetry.SpanID  // sender's span: the remote parent for receiver-side spans

	// Epoch tags the message with the Tuner round it belongs to. The Tuner
	// stamps it on every request and stores echo it on every reply, so a
	// buffered feature batch or ack left over from a failed round is
	// detectably stale instead of poisoning the next round. Zero means
	// "untagged" (a pre-epoch peer), which the Tuner accepts for
	// compatibility.
	Epoch int

	// LeaderEpoch extends the round-level Epoch to leader-level fencing: a
	// tuner stamps its durable leadership term on every outbound message,
	// and stores reject any message carrying a term lower than the highest
	// they have seen — a deposed leader's delayed or replayed traffic can
	// never advance state. Zero means "unfenced" (a pre-HA peer), which is
	// accepted for compatibility.
	LeaderEpoch uint64

	// MsgTrainRequest
	Runs      int // pipeline depth Nrun
	BatchSize int

	// Placement routing, on MsgTrainRequest / MsgInferRequest /
	// MsgRebuildRequest when the tuner runs with replication enabled. The
	// tuner ships the whole ring (membership + factor) instead of a
	// per-photo assignment: every store derives identical placement locally
	// (internal/placement is deterministic over the sorted member list), so
	// the routing map costs O(fleet) bytes per request, not O(photos).
	// A store extracts exactly the photos it owns — owner(photo) = first
	// LIVE replica on the ring — so a re-sent request with a shrunken
	// LiveStores list reroutes a dead store's photos to survivors mid-round.
	// PrevLive (set only on re-sent requests) is the live set the previous
	// request carried: a store re-extracts only photos it owns NOW but did
	// not own THEN, starting at run FromRun (earlier runs already trained).
	// All fields gob-decode to nil/0 from a pre-replication tuner, which
	// selects the legacy full-shard extraction path.
	RingStores  []string
	LiveStores  []string
	PrevLive    []string
	Replication int
	FromRun     int

	// MsgObjectPut / MsgObjects: replicated photo payloads, CRC32C-checked
	// end to end (producer computes, receiver verifies before storing).
	Objects []ObjectData

	// MsgScrubReport: objects the store's scrubber quarantined, awaiting
	// read-repair from a healthy replica.
	Quarantined []uint64

	// MsgScrubQuery: Inventory asks the store to include its full held-object
	// ID list (quarantined objects excluded — they have no servable bytes)
	// in the IDs field of its MsgScrubReport. The tuner's anti-entropy pass
	// diffs that inventory against ring placement to find replicas that are
	// MISSING rather than corrupt — a replica write that failed at ingest
	// leaves no bytes for any checksum to flag. Decodes false from
	// pre-anti-entropy peers, which keep reporting quarantine-only.
	Inventory bool

	// MsgFeatures
	Run    int // which pipelined run this batch belongs to
	Rows   int
	Cols   int
	X      []float64 // Rows×Cols row-major features
	Labels []int
	IDs    []uint64
	Final  bool // last batch of this run from this store

	// MsgModelDelta / MsgLabels. MsgHello also carries ModelVersion: the
	// store's persisted model version (0 = cold start), so the Tuner can
	// ship a minimal catch-up delta instead of the full composite. Absent
	// from pre-persistence stores, which gob-decodes to 0 — exactly the
	// cold-start behaviour they had.
	Blob         []byte
	ModelVersion int
	LabelsOut    map[uint64]int
	// Rebase marks a catch-up delta computed against the deterministic
	// initial classifier rather than the receiver's current snapshot — sent
	// when the store's persisted version predates the Tuner's pruned history
	// floor. Decodes as false from pre-rebase peers (gob zero value).
	Rebase bool
	// DeltaEncoding negotiates the compressed delta codec (delta.Encoding as
	// uint8). On MsgHello it is the best encoding the store can decode; on
	// MsgModelDelta it names how Blob is encoded. The zero value is the
	// legacy dense codec in both directions, so a pre-encoding peer — which
	// never sets the field and decodes it as 0 — keeps sending and receiving
	// exact dense f64 deltas unchanged.
	DeltaEncoding uint8

	// MsgError
	Err string

	// MsgSpans: finished spans a PipeStore ships back so the Tuner's
	// collector can stitch the cross-node trace.
	Spans []telemetry.SpanRecord

	// MsgMetrics: the store's registry snapshot (dense histogram buckets so
	// the fleet aggregator can merge losslessly), piggy-backed on round
	// traffic like MsgSpans. MetricsSeq is the store's monotone shipment
	// counter — the aggregator drops stale or duplicate sequence numbers, so
	// retransmits cannot double-count. A pre-metrics peer decodes these to
	// nil/0 and ignores them.
	Metrics    []telemetry.MetricPoint
	MetricsSeq uint64

	// MsgWALAppend / MsgWALAck / MsgStandbyHello: the HA replication
	// channel. WALSeq is the shipment sequence number (the bootstrap seed is
	// 1, live records count up from there); an ack echoes the sequence it
	// covers. WALCRC is the CRC32C of Blob using the same polynomial as the
	// durable log's frame checksum, so a record is integrity-checked
	// end-to-end: leader disk → wire → standby disk. Boot marks Blob as a
	// full bootstrap seed rather than a single WAL record. On
	// MsgStandbyHello, ModelVersion carries the standby's last applied
	// version (informational). All decode to zero from pre-HA peers.
	WALSeq uint64
	WALCRC uint32
	Boot   bool
}

// ObjectData is one photo object on the wire: the raw bytes and the
// uncompressed preprocessed encoding, each with its CRC32C. The receiver
// verifies both checksums before storing — a flip anywhere between the
// producer's disk and the receiver's memory is rejected, never persisted.
// Dest names the store the object is bound for when a third party (the
// tuner, during rebuild) relays it; empty means "for the receiver".
type ObjectData struct {
	ID     uint64
	Label  int
	Day    int
	Raw    []byte
	Pre    []byte // uncompressed preprocessed binary (core float encoding)
	RawCRC uint32
	PreCRC uint32
	Dest   string
}

// TraceContext returns the message's trace context in telemetry form.
func (m *Message) TraceContext() telemetry.SpanContext {
	return telemetry.SpanContext{Trace: m.Trace, Span: m.Parent}
}

// SetTraceContext stamps the envelope with a trace context (no-op fields
// when tc is the zero value).
func (m *Message) SetTraceContext(tc telemetry.SpanContext) {
	m.Trace = tc.Trace
	m.Parent = tc.Span
}

// Codec frames Messages over a stream with gob. It is safe for one
// concurrent reader and one concurrent writer.
type Codec struct {
	wmu   sync.Mutex
	enc   *gob.Encoder
	dec   *gob.Decoder
	guard *guardReader
}

// NewCodec wraps a bidirectional stream (typically a net.Conn). The stream
// is transparently instrumented: per-MsgType message counts and total bytes
// in each direction land in the telemetry default registry. Inbound frames
// claiming more than DefaultMaxMessage decoded bytes fail the stream with
// ErrTooLarge before any allocation happens.
func NewCodec(rw io.ReadWriter) *Codec {
	return NewCodecMax(rw, DefaultMaxMessage)
}

// NewCodecMax is NewCodec with an explicit decoded-message size limit
// (max <= 0 selects DefaultMaxMessage).
func NewCodecMax(rw io.ReadWriter, max int64) *Codec {
	if max <= 0 {
		max = DefaultMaxMessage
	}
	cs := countingStream{rw: rw}
	g := &guardReader{r: cs, max: uint64(max)}
	return &Codec{enc: gob.NewEncoder(cs), dec: gob.NewDecoder(g), guard: g}
}

// Send writes one message.
func (c *Codec) Send(m *Message) error {
	if m.Type == 0 {
		return fmt.Errorf("wire: message has no type")
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: send %v: %w", m.Type, err)
	}
	countSent(m.Type)
	return nil
}

// Recv reads the next message.
func (c *Codec) Recv() (*Message, error) {
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		// Surface the guard's typed verdict even if gob rewrapped the read
		// error on its way up.
		if c.guard != nil && c.guard.err != nil {
			return nil, c.guard.err
		}
		return nil, err
	}
	if m.Type == 0 {
		return nil, fmt.Errorf("wire: received untyped message")
	}
	countRecv(m.Type)
	return &m, nil
}

// SendError is a convenience for reporting a failure to the peer. A nil err
// is reported as "unknown error" rather than panicking.
func (c *Codec) SendError(storeID string, err error) error {
	msg := "unknown error"
	if err != nil {
		msg = err.Error()
	}
	return c.Send(&Message{Type: MsgError, StoreID: storeID, Err: msg})
}
