package serve

import (
	"testing"

	"ndpipe/internal/nn"
)

// modeBackend is a fakeBackend that declares a precision mode, like the real
// inferserver does once quantized.
type modeBackend struct {
	fakeBackend
	mode string
}

func (b *modeBackend) PrecisionMode() string { return b.mode }

// TestCacheKeyIncludesPrecisionMode: an f64 gateway and an int8 gateway must
// derive disjoint cache keys for the same content. A quantized embedding is
// deterministic but not bitwise the f64 one, so a shared key space would let
// a swapped backend serve the wrong precision's state.
func TestCacheKeyIncludesPrecisionMode(t *testing.T) {
	feat := []float64{1, 2, 3, 4}

	newGW := func(b Backend) *Gateway {
		t.Helper()
		g, err := New(b, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	plain := newGW(&fakeBackend{featDim: 4})
	defer plain.Close()
	f64 := newGW(&modeBackend{fakeBackend: fakeBackend{featDim: 4}, mode: nn.PrecisionF64})
	defer f64.Close()
	int8 := newGW(&modeBackend{fakeBackend: fakeBackend{featDim: 4}, mode: nn.PrecisionInt8})
	defer int8.Close()

	if plain.cacheKey(feat) != f64.cacheKey(feat) {
		t.Fatal("a backend without PrecisionMode must key like an explicit f64 one")
	}
	if f64.cacheKey(feat) == int8.cacheKey(feat) {
		t.Fatal("f64 and int8 gateways derived the same cache key for the same content")
	}
	// The seed perturbs the hash, not the collision guard: two different
	// feature vectors still get different keys under either seed.
	other := []float64{1, 2, 3, 5}
	if int8.cacheKey(feat) == int8.cacheKey(other) {
		t.Fatal("distinct content must hash to distinct keys under a seeded hash")
	}
}
