package serve

import (
	"math"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newFeatureCache(2)
	fa, fb, fc := []float64{1}, []float64{2}, []float64{3}
	if c.put(hashFeat(fa), fa, []float64{10}, 0, 0, 0) {
		t.Fatal("no eviction below capacity")
	}
	c.put(hashFeat(fb), fb, []float64{20}, 0, 0, 0)
	// Touch a so b becomes the LRU victim.
	if _, ok := c.get(hashFeat(fa), fa); !ok {
		t.Fatal("a must hit")
	}
	if !c.put(hashFeat(fc), fc, []float64{30}, 0, 0, 0) {
		t.Fatal("third insert at cap 2 must evict")
	}
	if _, ok := c.get(hashFeat(fb), fb); ok {
		t.Fatal("b (least recently used) must be gone")
	}
	if _, ok := c.get(hashFeat(fa), fa); !ok {
		t.Fatal("a must survive")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

// A hash collision must degrade to a miss, never serve a wrong embedding.
func TestCacheCollisionGuard(t *testing.T) {
	c := newFeatureCache(4)
	feat := []float64{1, 2, 3}
	other := []float64{4, 5, 6}
	key := uint64(777) // force both vectors onto one key
	c.put(key, feat, []float64{1}, 7, 0.5, 3)
	if _, ok := c.get(key, other); ok {
		t.Fatal("colliding content must miss")
	}
	if h, ok := c.get(key, feat); !ok || h.emb[0] != 1 || h.label != 7 || h.conf != 0.5 || h.version != 3 {
		t.Fatal("original content must still hit with its memo")
	}
	// Refresh on the same key replaces the entry; the guard keeps working.
	c.put(key, other, []float64{2}, 8, 0.25, 4)
	if _, ok := c.get(key, feat); ok {
		t.Fatal("replaced content must now miss")
	}
	if h, ok := c.get(key, other); !ok || h.emb[0] != 2 || h.label != 8 || h.version != 4 {
		t.Fatal("new content must hit with the refreshed memo")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestHashFeatContentKeyed(t *testing.T) {
	a := []float64{0.25, -3, 17}
	b := append([]float64(nil), a...)
	if hashFeat(a) != hashFeat(b) {
		t.Fatal("equal content must hash equal")
	}
	b[2] = 17.0000000001
	if hashFeat(a) == hashFeat(b) {
		t.Fatal("different content should hash differently")
	}
	// ±0 differ in bits, so they are different content by design.
	if hashFeat([]float64{0}) == hashFeat([]float64{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 are distinct bit patterns")
	}
}
