package serve

import (
	"runtime"
	"time"

	"ndpipe/internal/inferserver"
)

// dispatch is the batcher: it owns the consumer side of the queue, coalesces
// arrivals into time/size-windowed batches, and runs them against the
// backend. One dispatcher is enough — InferBatch itself fans the storage
// path out across goroutines, so the gateway's serial section is only the
// (batched) forward pass.
func (g *Gateway) dispatch() {
	defer close(g.drained)
	for {
		p, ok := <-g.queue
		if !ok {
			return
		}
		g.met.queueDepth.Add(-1)
		batch := append(make([]*pending, 0, g.opts.MaxBatch), p)
		if g.opts.MaxBatch > 1 {
			batch = g.fill(batch)
		}
		g.runBatch(batch)
	}
}

// fill grows a just-opened batch toward MaxBatch. The batcher is
// work-conserving: it drains whatever the queue holds, yields the scheduler
// so clients woken by the previous batch's replies get to enqueue, and
// dispatches the moment the queue stops producing — it never idles out the
// window when nothing more can arrive. MaxWait still bounds how long a slow
// trickle of arrivals can hold a partial batch open.
func (g *Gateway) fill(batch []*pending) []*pending {
	deadline := time.Now().Add(g.opts.MaxWait)
	idle := 0
	for len(batch) < g.opts.MaxBatch {
		select {
		case q, ok := <-g.queue:
			if !ok {
				return batch // closed: run what we have; the outer recv exits
			}
			g.met.queueDepth.Add(-1)
			batch = append(batch, q)
			idle = 0
			continue
		default:
		}
		// Queue momentarily empty. Admitted-but-unqueued clients are
		// runnable, not blocked, so a yield is enough for them to show up;
		// two empty passes in a row mean nobody is coming and holding the
		// batch open would only add dead latency.
		if idle >= 2 || time.Now().After(deadline) {
			return batch
		}
		idle++
		runtime.Gosched()
	}
	return batch
}

// cacheKey derives the content-hash cache key for a feature vector: FNV-1a
// over the content, seeded with the backend's precision mode so a key from
// an f64 deployment can never match one from an int8 deployment.
func (g *Gateway) cacheKey(feat []float64) uint64 {
	return hashFeatSeeded(g.keySeed, feat)
}

// runBatch resolves cache hits, executes one batched inference call, feeds
// fresh embeddings back into the cache, and answers every waiter with its
// latency observed against the SLO.
func (g *Gateway) runBatch(batch []*pending) {
	reqs := make([]inferserver.BatchRequest, len(batch))
	var keys []uint64
	var hits []bool
	if g.cache != nil {
		keys = make([]uint64, len(batch))
		hits = make([]bool, len(batch))
	}
	for i, p := range batch {
		reqs[i].Img = p.req.Img
		if g.cache == nil {
			continue
		}
		keys[i] = g.cacheKey(p.req.Img.Feat)
		if h, ok := g.cache.get(keys[i], p.req.Img.Feat); ok {
			reqs[i].Emb = h.emb
			// Offer the memoized classifier result too; the backend applies
			// it only if the model version still matches (checked under the
			// model lock), else it recomputes the head from the embedding.
			reqs[i].HaveMemo = true
			reqs[i].MemoLabel = h.label
			reqs[i].MemoConf = h.conf
			reqs[i].MemoVersion = h.version
			hits[i] = true
			g.met.cacheHit.Inc()
		} else {
			reqs[i].WantEmb = true // miss: bring the embedding back for the cache
			g.met.cacheMiss.Inc()
		}
	}

	results := g.backend.InferBatch(reqs)
	g.met.batches.Inc()
	g.met.batchSize.Observe(float64(len(batch)))

	sloSec := g.opts.SLOTarget.Seconds()
	done := g.now() // one completion timestamp for the whole batch
	for i, p := range batch {
		r := results[i]
		if g.cache != nil && r.Err == nil {
			switch {
			case !hits[i] && r.Emb != nil:
				if g.cache.put(keys[i], p.req.Img.Feat, r.Emb,
					r.Label, r.Confidence, r.ModelVersion) {
					g.met.cacheEvict.Inc()
				}
			case hits[i] && r.ModelVersion == reqs[i].MemoVersion:
				g.met.resultHit.Inc() // memo survived the in-lock version check
			case hits[i]:
				// A classifier delta landed since the memo: the head was
				// recomputed from the cached embedding — refresh the memo.
				g.cache.put(keys[i], p.req.Img.Feat, reqs[i].Emb,
					r.Label, r.Confidence, r.ModelVersion)
			}
		}
		lat := done.Sub(p.enq).Seconds()
		g.met.latency.Observe(lat)
		if lat > sloSec {
			g.met.sloViol.Inc()
		}
		if r.Err != nil {
			g.met.errors.Inc()
		}
		g.met.completed.Inc()
		p.resp <- outcome{res: r.UploadResult, err: r.Err}
	}
	if done := g.met.completed.Value(); done > 0 {
		g.met.sloBurn.Set(float64(g.met.sloViol.Value()) / float64(done))
	}
}
