package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ndpipe/internal/dataset"
	"ndpipe/internal/inferserver"
	"ndpipe/internal/telemetry"
)

// fakeBackend records batch compositions and answers deterministically,
// honoring the same memo contract as the real server: a memoized result is
// returned verbatim only when its version matches the backend's.
type fakeBackend struct {
	mu      sync.Mutex
	batches [][]uint64
	entered chan struct{} // non-nil: signaled when a batch starts
	gate    chan struct{} // non-nil: each batch blocks here before returning
	fail    map[uint64]error
	featDim int
	version int
}

func (f *fakeBackend) InferBatch(reqs []inferserver.BatchRequest) []inferserver.BatchResult {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	ids := make([]uint64, len(reqs))
	out := make([]inferserver.BatchResult, len(reqs))
	for i, r := range reqs {
		ids[i] = r.Img.ID
		if err := f.fail[r.Img.ID]; err != nil {
			out[i].Err = err
			continue
		}
		if r.HaveMemo && r.MemoVersion == f.version {
			out[i] = inferserver.BatchResult{UploadResult: inferserver.UploadResult{
				ImageID: r.Img.ID, Label: r.MemoLabel, Confidence: r.MemoConf,
				ModelVersion: f.version,
			}}
			continue
		}
		emb := r.Emb
		if emb == nil {
			emb = make([]float64, f.featDim)
			for j := range emb {
				emb[j] = float64(r.Img.ID) + float64(j)
			}
		}
		// Label derives from the embedding, like the real classifier head —
		// a cache hit (echoed Emb) must reproduce the original label.
		out[i] = inferserver.BatchResult{
			UploadResult: inferserver.UploadResult{
				ImageID: r.Img.ID, Label: int(emb[0]) % 7, Confidence: 0.9,
				ModelVersion: f.version,
			},
			Emb: emb,
		}
	}
	f.mu.Lock()
	f.batches = append(f.batches, ids)
	f.mu.Unlock()
	return out
}

func img(id uint64) dataset.Image {
	return dataset.Image{ID: id, Feat: []float64{float64(id), 1, 2}}
}

func testOptions() Options {
	o := DefaultOptions()
	o.Registry = telemetry.NewRegistry()
	o.CacheEntries = -1 // most tests run cache-less; cache tests opt in
	return o
}

// The batcher must coalesce queued arrivals into one backend call.
func TestGatewayCoalescesBatches(t *testing.T) {
	fb := &fakeBackend{featDim: 4, entered: make(chan struct{}, 16), gate: make(chan struct{})}
	opts := testOptions()
	opts.MaxBatch = 8
	opts.MaxWait = time.Millisecond
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]inferserver.UploadResult, 9)
	errs := make([]error, 9)
	upload := func(i int) {
		defer wg.Done()
		results[i], errs[i] = g.Upload(Request{Img: img(uint64(i))})
	}
	wg.Add(1)
	go upload(0)
	<-fb.entered // batch 1 (just photo 0) is now blocked inside the backend
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go upload(i)
	}
	// Wait until all 8 are admitted and queued behind the in-flight batch.
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Admitted < 9 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted = %d, want 9", g.Stats().Admitted)
		}
		time.Sleep(time.Millisecond)
	}
	fb.gate <- struct{}{} // release batch 1
	<-fb.entered          // batch 2 assembled
	fb.gate <- struct{}{} // release batch 2
	wg.Wait()
	g.Close()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("upload %d: %v", i, errs[i])
		}
		if results[i].ImageID != uint64(i) {
			t.Fatalf("upload %d got result for image %d", i, results[i].ImageID)
		}
	}
	if len(fb.batches) != 2 || len(fb.batches[0]) != 1 || len(fb.batches[1]) != 8 {
		sizes := make([]int, len(fb.batches))
		for i, b := range fb.batches {
			sizes[i] = len(b)
		}
		t.Fatalf("batch sizes = %v, want [1 8]", sizes)
	}
	if st := g.Stats(); st.Batches != 2 || st.MeanBatch() != 4.5 {
		t.Fatalf("stats = %+v", st)
	}
}

// Shed policy: a full queue fails fast, and every drop is counted.
func TestShedPolicyCountsEveryDrop(t *testing.T) {
	fb := &fakeBackend{featDim: 4, entered: make(chan struct{}, 16), gate: make(chan struct{})}
	opts := testOptions()
	opts.MaxBatch = 1
	opts.QueueDepth = 2
	opts.Policy = Shed
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := g.Upload(Request{Img: img(1)}); err != nil {
			t.Error(err)
		}
	}()
	<-fb.entered // photo 1 is in flight; queue is empty again

	// Fill the queue exactly...
	for i := uint64(2); i <= 3; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			if _, err := g.Upload(Request{Img: img(i)}); err != nil {
				t.Errorf("queued upload %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Admitted < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted = %d, want 3", g.Stats().Admitted)
		}
		time.Sleep(time.Millisecond)
	}
	// ...and the next arrivals must shed, visibly.
	for i := uint64(4); i <= 5; i++ {
		if _, err := g.Upload(Request{Img: img(i)}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("image %d: err = %v, want ErrOverloaded", i, err)
		}
	}
	close(fb.gate) // release everything
	wg.Wait()
	g.Close()

	st := g.Stats()
	if st.Admitted != 3 || st.Completed != 3 || st.ShedQueueFull != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The drops are visible in the registry, not just in Stats.
	c := opts.Registry.Counter(telemetry.Labeled("serve_rejected_total", "reason", "queue_full"))
	if c.Value() != 2 {
		t.Fatalf("serve_rejected_total{reason=queue_full} = %d, want 2", c.Value())
	}
}

// Per-tenant token buckets throttle one tenant without touching another.
func TestTenantThrottling(t *testing.T) {
	fb := &fakeBackend{featDim: 4}
	opts := testOptions()
	opts.MaxBatch = 1
	opts.TenantRate = 1
	opts.TenantBurst = 2
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	clock := time.Unix(1000, 0)
	g.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if _, err := g.Upload(Request{Img: img(uint64(i)), Tenant: "noisy"}); err != nil {
			t.Fatalf("burst upload %d: %v", i, err)
		}
	}
	if _, err := g.Upload(Request{Img: img(9), Tenant: "noisy"}); !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", err)
	}
	// Another tenant is unaffected.
	if _, err := g.Upload(Request{Img: img(10), Tenant: "quiet"}); err != nil {
		t.Fatalf("quiet tenant: %v", err)
	}
	// A second of wall time refills one token.
	clock = clock.Add(time.Second)
	if _, err := g.Upload(Request{Img: img(11), Tenant: "noisy"}); err != nil {
		t.Fatalf("refilled upload: %v", err)
	}
	if st := g.Stats(); st.ShedTenant != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Close drains admitted requests and rejects (with attribution) new ones.
func TestCloseDrainsAndRejects(t *testing.T) {
	fb := &fakeBackend{featDim: 4, gate: make(chan struct{})}
	opts := testOptions()
	opts.MaxBatch = 4
	opts.MaxWait = time.Millisecond
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := g.Upload(Request{Img: img(uint64(i))}); err != nil {
				t.Errorf("upload %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Admitted < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted = %d, want 6", g.Stats().Admitted)
		}
		time.Sleep(time.Millisecond)
	}
	close(fb.gate)
	g.Close() // must block until every admitted request is answered
	wg.Wait()

	st := g.Stats()
	if st.Completed != 6 || st.Admitted != 6 {
		t.Fatalf("stats after close = %+v", st)
	}
	if _, err := g.Upload(Request{Img: img(99)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if st := g.Stats(); st.RejectedClosed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	g.Close() // idempotent
}

// A failed photo answers its own caller with the error; batchmates succeed.
func TestPerPhotoErrorAttribution(t *testing.T) {
	boom := fmt.Errorf("synthetic ingest failure")
	fb := &fakeBackend{featDim: 4, fail: map[uint64]error{3: boom}}
	opts := testOptions()
	opts.MaxBatch = 4
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = g.Upload(Request{Img: img(uint64(i))})
		}(i)
	}
	wg.Wait()
	g.Close()
	for i, err := range errs {
		if i == 3 {
			if !errors.Is(err, boom) {
				t.Fatalf("photo 3: err = %v, want the ingest failure", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("photo %d: %v", i, err)
		}
	}
	st := g.Stats()
	if st.Errors != 1 || st.Completed != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

// The gateway cache skips the backbone on re-uploaded content and the hit
// is bitwise-identical to the miss.
func TestGatewayCacheHits(t *testing.T) {
	fb := &fakeBackend{featDim: 4}
	opts := testOptions()
	opts.MaxBatch = 1
	opts.CacheEntries = 8
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	photo := img(42)
	first, err := g.Upload(Request{Img: photo})
	if err != nil {
		t.Fatal(err)
	}
	replay := photo
	replay.ID = 43 // same content, new upload
	// fakeBackend derives the embedding from the ID on a miss but echoes
	// Emb on a hit — so a hit is detectable by the recorded request.
	second, err := g.Upload(Request{Img: replay})
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if first.Label != second.Label {
		t.Fatalf("hit label %d != miss label %d", second.Label, first.Label)
	}
	if g.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", g.cache.len())
	}
}

// Option validation and policy parsing.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil backend must error")
	}
	bad := testOptions()
	bad.MaxBatch = -1
	if _, err := New(&fakeBackend{}, bad); err == nil {
		t.Fatal("negative MaxBatch must error")
	}
	bad = testOptions()
	bad.TenantRate = -2
	if _, err := New(&fakeBackend{}, bad); err == nil {
		t.Fatal("negative TenantRate must error")
	}
	if p, err := ParsePolicy("shed"); err != nil || p != Shed {
		t.Fatalf("ParsePolicy(shed) = %v, %v", p, err)
	}
	if p, err := ParsePolicy("block"); err != nil || p != Block {
		t.Fatalf("ParsePolicy(block) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

// TestSetDegradedTransitions pins the degraded-mode contract: the gauge
// tracks the state, repeated sets are no-ops, and recovery clears it.
func TestSetDegradedTransitions(t *testing.T) {
	fb := &fakeBackend{featDim: 4}
	opts := testOptions()
	g, err := New(fb, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Degraded() {
		t.Fatal("fresh gateway must not be degraded")
	}
	gauge := opts.Registry.Gauge("serve_degraded")
	g.SetDegraded(true, "tuner unreachable")
	g.SetDegraded(true, "tuner unreachable") // idempotent
	if !g.Degraded() || gauge.Value() != 1 {
		t.Fatalf("degraded = %v gauge = %v, want true/1", g.Degraded(), gauge.Value())
	}
	g.SetDegraded(false, "tuner back")
	if g.Degraded() || gauge.Value() != 0 {
		t.Fatalf("degraded = %v gauge = %v, want false/0", g.Degraded(), gauge.Value())
	}
}
