package serve

import (
	"sync"
	"time"
)

// admitter enforces per-tenant admission rates with lazily-created token
// buckets: each tenant accrues rate tokens/sec up to burst, and every
// admitted upload spends one. A tenant that outruns its bucket is throttled
// (ErrThrottled) without touching any other tenant's budget.
type admitter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newAdmitter(rate, burst float64) *admitter {
	if burst < 1 {
		burst = 1
	}
	return &admitter{rate: rate, burst: burst, buckets: make(map[string]*tokenBucket)}
}

// allow spends one token from tenant's bucket, refilling by elapsed wall
// time first. New tenants start with a full bucket.
func (a *admitter) allow(tenant string, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * a.rate
			if b.tokens > a.burst {
				b.tokens = a.burst
			}
			b.last = now
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
