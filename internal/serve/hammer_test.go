package serve

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/inferserver"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
)

// rig builds a real inference server over in-process PipeStores.
func rig(t *testing.T, nStores, nImages int, seed int64) (*inferserver.Server, *dataset.World) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(seed)
	wcfg.InitialImages = nImages
	world := dataset.NewWorld(wcfg)
	var stores []*pipestore.Node
	for i := 0; i < nStores; i++ {
		ps, err := pipestore.New(string(rune('a'+i)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, ps)
	}
	srv, err := inferserver.New(cfg, stores, labeldb.New())
	if err != nil {
		t.Fatal(err)
	}
	return srv, world
}

// makeDelta produces an encoded classifier delta that substantially changes
// the head (the Check-N-Run update the hammer applies mid-flight).
func makeDelta(t *testing.T, scale float64) []byte {
	t.Helper()
	cfg := core.DefaultModelConfig()
	clf := cfg.NewClassifier()
	base := clf.TakeSnapshot()
	for _, p := range clf.TrainableParams() {
		for i := range p.W.Data {
			p.W.Data[i] += scale * 0.05
		}
	}
	d, err := delta.Diff(base, clf.TakeSnapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestServeHammer drives ≥100 concurrent Upload goroutines through the
// gateway while deltas are applied concurrently, under -race: it proves the
// clone-under-lock scratch-buffer contract holds on the batched path (no
// torn logits, every result well-formed) and that nothing is lost.
func TestServeHammer(t *testing.T) {
	const (
		clients   = 100
		perClient = 5
		total     = clients * perClient
	)
	srv, world := rig(t, 2, total+10, 7)
	opts := testOptions()
	opts.MaxBatch = 16
	opts.MaxWait = 500 * time.Microsecond
	opts.QueueDepth = 128
	opts.CacheEntries = 512
	g, err := New(srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultModelConfig()
	imgs := world.Images()[:total]

	// Precompute delta blobs on the test goroutine (makeDelta may t.Fatal);
	// the applier goroutine cycles through them with increasing versions.
	blobs := make([][]byte, 8)
	for i := range blobs {
		blobs[i] = makeDelta(t, float64(i+1))
	}
	stop := make(chan struct{})
	var deltaWG sync.WaitGroup
	deltaWG.Add(1)
	go func() {
		defer deltaWG.Done()
		v := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.ApplyDelta(blobs[v%len(blobs)], v); err != nil {
				t.Error(err)
				return
			}
			v++
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				img := imgs[c*perClient+k]
				res, err := g.Upload(Request{Img: img, Tenant: string(rune('A' + c%5))})
				if err != nil {
					t.Errorf("client %d upload %d: %v", c, k, err)
					return
				}
				if res.ImageID != img.ID {
					t.Errorf("client %d got result for image %d, want %d", c, res.ImageID, img.ID)
				}
				if res.Label < 0 || res.Label >= cfg.Classes {
					t.Errorf("label %d out of range", res.Label)
				}
				if !(res.Confidence > 0 && res.Confidence <= 1) || math.IsNaN(res.Confidence) {
					t.Errorf("torn confidence %v", res.Confidence)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	deltaWG.Wait()
	g.Close()

	st := g.Stats()
	if st.Admitted != total || st.Completed != total || st.Errors != 0 || st.Rejected() != 0 {
		t.Fatalf("conservation violated: %+v", st)
	}
	if srv.Uploads() != total {
		t.Fatalf("server ingested %d, want %d", srv.Uploads(), total)
	}
}

// TestServeBitwiseAcrossParallelism proves the batched gateway path is
// bitwise-identical to the sequential Upload loop at every kernel
// parallelism level: same labels, same confidence bits per photo.
func TestServeBitwiseAcrossParallelism(t *testing.T) {
	defer tensor.SetParallelism(0)
	const n = 48
	for _, par := range []int{1, 2, 4} {
		tensor.SetParallelism(par)

		seqSrv, world := rig(t, 2, n+10, 11)
		imgs := world.Images()[:n]
		type key struct {
			label int
			bits  uint64
		}
		want := make(map[uint64]key, n)
		for _, img := range imgs {
			r, err := seqSrv.Upload(img)
			if err != nil {
				t.Fatal(err)
			}
			want[img.ID] = key{r.Label, math.Float64bits(r.Confidence)}
		}

		gwSrv, _ := rig(t, 2, n+10, 11)
		opts := testOptions()
		opts.MaxBatch = 8
		opts.MaxWait = 200 * time.Microsecond
		opts.CacheEntries = 64
		g, err := New(gwSrv, opts)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		got := make([]inferserver.UploadResult, n)
		for i := range imgs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := g.Upload(Request{Img: imgs[i]})
				if err != nil {
					t.Error(err)
					return
				}
				got[i] = r
			}(i)
		}
		wg.Wait()
		g.Close()
		for i, img := range imgs {
			w := want[img.ID]
			if got[i].Label != w.label || math.Float64bits(got[i].Confidence) != w.bits {
				t.Fatalf("parallelism %d photo %d: batched (%d, %x) != sequential (%d, %x)",
					par, i, got[i].Label, math.Float64bits(got[i].Confidence), w.label, w.bits)
			}
		}
	}
}

// TestServeCacheBitwiseIdentity re-uploads identical content through the
// gateway cache and demands bit-equal results — the cache-correctness
// acceptance criterion.
func TestServeCacheBitwiseIdentity(t *testing.T) {
	const n = 24
	srv, world := rig(t, 2, n+10, 13)
	opts := testOptions()
	opts.MaxBatch = 8
	opts.MaxWait = 200 * time.Microsecond
	opts.CacheEntries = 256
	g, err := New(srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	imgs := world.Images()[:n]
	first := make([]inferserver.UploadResult, n)
	for i, img := range imgs {
		r, err := g.Upload(Request{Img: img})
		if err != nil {
			t.Fatal(err)
		}
		first[i] = r
	}
	for i, img := range imgs {
		replay := img
		replay.ID = img.ID + 1_000_000 // same content, fresh upload
		r, err := g.Upload(Request{Img: replay})
		if err != nil {
			t.Fatal(err)
		}
		if r.Label != first[i].Label ||
			math.Float64bits(r.Confidence) != math.Float64bits(first[i].Confidence) {
			t.Fatalf("photo %d: cache-hit (%d, %x) != miss (%d, %x)", i,
				r.Label, math.Float64bits(r.Confidence),
				first[i].Label, math.Float64bits(first[i].Confidence))
		}
	}
	st := g.Stats()
	if st.CacheHits < int64(n) {
		t.Fatalf("cache hits = %d, want ≥ %d", st.CacheHits, n)
	}
}

// TestServeMemoVersionGate proves the result-memo tier of the cache: while
// the model is unchanged, a repeat upload of known content skips the
// classifier entirely (CacheResultHits) and returns the original bits; after
// a classifier delta, the stale memo is never served — the head is recomputed
// from the still-valid cached embedding, bitwise-identical to a fresh
// sequential upload at the new version — and the refreshed memo hits again.
func TestServeMemoVersionGate(t *testing.T) {
	srv, world := rig(t, 1, 40, 19)
	opts := testOptions()
	opts.MaxBatch = 4
	opts.CacheEntries = 64
	g, err := New(srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	photo := world.Images()[0]
	first, err := g.Upload(Request{Img: photo})
	if err != nil {
		t.Fatal(err)
	}
	replay := photo
	replay.ID += 1_000_000
	second, err := g.Upload(Request{Img: replay})
	if err != nil {
		t.Fatal(err)
	}
	if second.Label != first.Label ||
		math.Float64bits(second.Confidence) != math.Float64bits(first.Confidence) {
		t.Fatalf("memo hit (%d, %x) != original (%d, %x)", second.Label,
			math.Float64bits(second.Confidence), first.Label, math.Float64bits(first.Confidence))
	}
	if st := g.Stats(); st.CacheResultHits != 1 {
		t.Fatalf("CacheResultHits = %d, want 1 (stats %+v)", st.CacheResultHits, st)
	}

	if err := srv.ApplyDelta(makeDelta(t, 3), 1); err != nil {
		t.Fatal(err)
	}
	// Reference: the sequential path at v1 on the same content.
	ref := photo
	ref.ID += 2_000_000
	want, err := srv.Upload(ref)
	if err != nil {
		t.Fatal(err)
	}
	stale := photo
	stale.ID += 3_000_000
	got, err := g.Upload(Request{Img: stale})
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != 1 {
		t.Fatalf("post-delta upload labeled by v%d, want v1", got.ModelVersion)
	}
	if got.Label != want.Label ||
		math.Float64bits(got.Confidence) != math.Float64bits(want.Confidence) {
		t.Fatalf("post-delta hit (%d, %x) != sequential v1 (%d, %x)", got.Label,
			math.Float64bits(got.Confidence), want.Label, math.Float64bits(want.Confidence))
	}
	st := g.Stats()
	if st.CacheResultHits != 1 {
		t.Fatalf("stale memo must not count as a result hit: %+v", st)
	}
	// The recompute refreshed the memo at v1: the next repeat skips the head.
	again := photo
	again.ID += 4_000_000
	r3, err := g.Upload(Request{Img: again})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Label != want.Label ||
		math.Float64bits(r3.Confidence) != math.Float64bits(want.Confidence) {
		t.Fatalf("refreshed memo (%d, %x) != sequential v1 (%d, %x)", r3.Label,
			math.Float64bits(r3.Confidence), want.Label, math.Float64bits(want.Confidence))
	}
	if st := g.Stats(); st.CacheResultHits != 2 {
		t.Fatalf("refreshed memo must hit: %+v", st)
	}
}

// TestServeSmoke is the closed-loop serving smoke check behind
// `make serve-smoke`: it drives an overloaded gateway with shedding and
// tenant throttling, then fails on any silent drop (client-side tallies
// must equal the gateway's counters exactly) or SLO-counter mismatch (the
// latency histogram must have observed exactly the completed requests).
func TestServeSmoke(t *testing.T) {
	const (
		clients   = 16
		perClient = 40
		offered   = clients * perClient
	)
	srv, world := rig(t, 2, offered+10, 17)
	reg := telemetry.NewRegistry()
	opts := Options{
		MaxBatch:     8,
		MaxWait:      200 * time.Microsecond,
		QueueDepth:   16,
		Policy:       Shed,
		SLOTarget:    25 * time.Millisecond,
		CacheEntries: 256,
		TenantRate:   500, // high enough to admit most, low enough to fire
		TenantBurst:  8,
		Registry:     reg,
	}
	g, err := New(srv, opts)
	if err != nil {
		t.Fatal(err)
	}

	var okN, shedN, throttledN, otherN int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	imgs := world.Images()[:offered]
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := "t0"
			if c%4 == 0 {
				tenant = "noisy"
			}
			var ok, shed, throttled, other int64
			for k := 0; k < perClient; k++ {
				_, err := g.Upload(Request{Img: imgs[c*perClient+k], Tenant: tenant})
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					shed++
				case errors.Is(err, ErrThrottled):
					throttled++
				default:
					other++
				}
			}
			mu.Lock()
			okN += ok
			shedN += shed
			throttledN += throttled
			otherN += other
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	g.Close()

	st := g.Stats()
	if otherN != 0 {
		t.Fatalf("%d uploads failed with unexpected errors", otherN)
	}
	// No silent drops: every offered request is accounted for, and the
	// client-observed outcome tallies match the exported counters exactly.
	if okN+shedN+throttledN != offered {
		t.Fatalf("client tallies %d+%d+%d != offered %d", okN, shedN, throttledN, offered)
	}
	if st.Admitted != okN || st.ShedQueueFull != shedN || st.ShedTenant != throttledN {
		t.Fatalf("counter mismatch: stats %+v vs client ok=%d shed=%d throttled=%d",
			st, okN, shedN, throttledN)
	}
	if st.Completed != st.Admitted {
		t.Fatalf("admitted %d but completed %d (lost in the queue)", st.Admitted, st.Completed)
	}
	// SLO-counter consistency: the latency histogram observed exactly the
	// completed requests, and violations never exceed completions.
	h := reg.Histogram("serve_upload_seconds")
	if h.Count() != uint64(st.Completed) {
		t.Fatalf("serve_upload_seconds count %d != completed %d", h.Count(), st.Completed)
	}
	if st.SLOViolations > st.Completed {
		t.Fatalf("slo violations %d > completed %d", st.SLOViolations, st.Completed)
	}
	// Every drop is visible in the registry exposition, not just Stats.
	for reason, want := range map[string]int64{
		"queue_full": st.ShedQueueFull,
		"tenant":     st.ShedTenant,
		"closed":     st.RejectedClosed,
	} {
		c := reg.Counter(telemetry.Labeled("serve_rejected_total", "reason", reason))
		if c.Value() != want {
			t.Fatalf("serve_rejected_total{reason=%q} = %d, want %d", reason, c.Value(), want)
		}
	}
}
