// Package serve is the online serving gateway in front of the inference
// path (§6, Fig 3): the subsystem that turns "one request, one inference
// under a mutex" into a latency-SLO serving system.
//
// Three mechanisms, following the determinism-first rules of bounded-queue
// stream processing (DESIGN.md §8):
//
//   - Dynamic batching: concurrent uploads are coalesced by a time/size
//     window (MaxBatch photos or MaxWait, whichever first) into one
//     inferserver.InferBatch call, so the pooled parallel kernels see real
//     N×D forward passes instead of N separate 1×D ones.
//   - Admission control: a bounded queue with an explicit overload policy
//     (Block applies backpressure, Shed fails fast with ErrOverloaded) and
//     per-tenant token buckets. Every rejected request is counted — drops
//     are never silent.
//   - Feature cache: a content-hash-keyed LRU of backbone embeddings plus a
//     versioned memo of the classifier result. The backbone is frozen, so an
//     embedding hit is bitwise-identical to a miss and classifier-only
//     deltas need no invalidation; the result memo is version-gated inside
//     the backend's model lock, so a delta transparently downgrades hits
//     from "skip everything" to "skip the backbone, re-run the head".
//
// SLO burn (p50/p95/p99 against a configurable target), queue depth, batch
// sizes, cache hit/miss and shed counts are exported through the telemetry
// registry as serve_* metrics.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndpipe/internal/dataset"
	"ndpipe/internal/inferserver"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
)

// OverloadPolicy selects what a full queue does to new arrivals.
type OverloadPolicy int

const (
	// Block applies backpressure: Upload blocks until the queue has room.
	Block OverloadPolicy = iota
	// Shed fails fast: Upload returns ErrOverloaded immediately and the
	// drop is counted in serve_rejected_total{reason="queue_full"}.
	Shed
)

// String implements fmt.Stringer.
func (p OverloadPolicy) String() string {
	if p == Shed {
		return "shed"
	}
	return "block"
}

// ParsePolicy parses "block" or "shed" (the -serve-policy flag values).
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "block", "":
		return Block, nil
	case "shed":
		return Shed, nil
	}
	return Block, fmt.Errorf("serve: unknown overload policy %q (want block|shed)", s)
}

// Options configures a Gateway. The zero value of any field takes the
// DefaultOptions value for that field.
type Options struct {
	// MaxBatch is the largest coalesced forward pass (photos per batch).
	MaxBatch int
	// MaxWait bounds how long the batcher holds the first photo of a batch
	// open waiting for company. The batcher is work-conserving: it dispatches
	// as soon as the queue stops producing, so MaxWait only matters when a
	// slow trickle of arrivals keeps a partial batch open.
	MaxWait time.Duration
	// QueueDepth bounds the admission queue. Arrivals beyond it hit Policy.
	QueueDepth int
	// Policy is the overload behavior: Block (backpressure) or Shed.
	Policy OverloadPolicy
	// SLOTarget is the upload-latency objective; completions above it count
	// into serve_slo_violations_total and the serve_slo_burn_ratio gauge.
	SLOTarget time.Duration
	// CacheEntries sizes the content-hash embedding LRU. Negative disables
	// the cache; zero takes the default.
	CacheEntries int
	// TenantRate is the per-tenant admission rate in uploads/sec; 0 leaves
	// tenants unthrottled. Requests are keyed by Request.Tenant ("" is a
	// tenant like any other).
	TenantRate float64
	// TenantBurst is the token-bucket burst per tenant (default: max(1,
	// ceil(TenantRate))).
	TenantBurst int
	// Registry receives the serve_* instruments (default telemetry.Default).
	// Benchmarks use a private registry per run so curves don't bleed
	// across sweep points.
	Registry *telemetry.Registry
}

// DefaultOptions returns the serving defaults: batches of 16 within 2ms,
// a 256-deep queue with backpressure, a 50ms SLO and a 4096-entry cache.
func DefaultOptions() Options {
	return Options{
		MaxBatch:     16,
		MaxWait:      2 * time.Millisecond,
		QueueDepth:   256,
		Policy:       Block,
		SLOTarget:    50 * time.Millisecond,
		CacheEntries: 4096,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxBatch == 0 {
		o.MaxBatch = d.MaxBatch
	}
	if o.MaxWait == 0 {
		o.MaxWait = d.MaxWait
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = d.QueueDepth
	}
	if o.SLOTarget == 0 {
		o.SLOTarget = d.SLOTarget
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = d.CacheEntries
	}
	if o.TenantBurst == 0 && o.TenantRate > 0 {
		o.TenantBurst = int(o.TenantRate + 1)
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default
	}
	return o
}

func (o Options) validate() error {
	if o.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch %d < 1", o.MaxBatch)
	}
	if o.MaxWait < 0 {
		return fmt.Errorf("serve: negative MaxWait %v", o.MaxWait)
	}
	if o.QueueDepth < 1 {
		return fmt.Errorf("serve: QueueDepth %d < 1", o.QueueDepth)
	}
	if o.SLOTarget <= 0 {
		return fmt.Errorf("serve: SLOTarget %v must be positive", o.SLOTarget)
	}
	if o.TenantRate < 0 {
		return fmt.Errorf("serve: negative TenantRate %v", o.TenantRate)
	}
	return nil
}

// Backend is the batched inference surface the gateway fronts;
// *inferserver.Server implements it.
type Backend interface {
	InferBatch([]inferserver.BatchRequest) []inferserver.BatchResult
}

// PrecisionModer is optionally implemented by backends whose backbone can
// run at more than one numeric precision (inferserver's -quantize int8
// replica). The gateway folds the mode into its cache key derivation:
// embeddings computed at different precisions are deterministic but not
// bitwise-interchangeable, so a mixed fleet must never cross-serve them.
type PrecisionModer interface {
	PrecisionMode() string
}

// Request is one upload entering the gateway.
type Request struct {
	Img dataset.Image
	// Tenant keys per-tenant admission control; empty string is the
	// default tenant.
	Tenant string
}

// Sentinel errors of the admission path. Every return of one of these has a
// matching increment in serve_rejected_total{reason=...}.
var (
	ErrOverloaded = errors.New("serve: queue full, request shed")
	ErrThrottled  = errors.New("serve: tenant over admission rate")
	ErrClosed     = errors.New("serve: gateway closed")
)

type outcome struct {
	res inferserver.UploadResult
	err error
}

type pending struct {
	req  Request
	enq  time.Time
	resp chan outcome // buffered(1): runBatch never blocks on a reply
}

// pendingPool recycles pending slots (and their reply channels): every
// admitted request gets exactly one reply, so after the waiter reads it the
// slot is quiescent and safe to reuse.
var pendingPool = sync.Pool{
	New: func() any { return &pending{resp: make(chan outcome, 1)} },
}

// gatewayMetrics holds the serve_* instruments, registered once in New.
type gatewayMetrics struct {
	admitted   *telemetry.Counter
	completed  *telemetry.Counter
	errors     *telemetry.Counter
	shedQueue  *telemetry.Counter
	shedTenant *telemetry.Counter
	rejClosed  *telemetry.Counter
	cacheHit   *telemetry.Counter
	cacheMiss  *telemetry.Counter
	cacheEvict *telemetry.Counter
	resultHit  *telemetry.Counter
	batches    *telemetry.Counter
	sloViol    *telemetry.Counter
	queueDepth *telemetry.Gauge
	sloTarget  *telemetry.Gauge
	sloBurn    *telemetry.Gauge
	degraded   *telemetry.Gauge
	latency    *telemetry.Histogram
	batchSize  *telemetry.Histogram
}

func newGatewayMetrics(reg *telemetry.Registry) gatewayMetrics {
	rej := func(reason string) *telemetry.Counter {
		return reg.Counter(telemetry.Labeled("serve_rejected_total", "reason", reason))
	}
	return gatewayMetrics{
		admitted:   reg.Counter("serve_admitted_total"),
		completed:  reg.Counter("serve_completed_total"),
		errors:     reg.Counter("serve_errors_total"),
		shedQueue:  rej("queue_full"),
		shedTenant: rej("tenant"),
		rejClosed:  rej("closed"),
		cacheHit:   reg.Counter("serve_cache_hits_total"),
		cacheMiss:  reg.Counter("serve_cache_misses_total"),
		cacheEvict: reg.Counter("serve_cache_evictions_total"),
		resultHit:  reg.Counter("serve_cache_result_hits_total"),
		batches:    reg.Counter("serve_batches_total"),
		sloViol:    reg.Counter("serve_slo_violations_total"),
		queueDepth: reg.Gauge("serve_queue_depth"),
		sloTarget:  reg.Gauge("serve_slo_target_seconds"),
		sloBurn:    reg.Gauge("serve_slo_burn_ratio"),
		degraded:   reg.Gauge("serve_degraded"),
		latency:    reg.Histogram("serve_upload_seconds"),
		batchSize: reg.HistogramBuckets("serve_batch_size",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

// Gateway is the serving front door. Create with New, feed with Upload from
// any number of goroutines, stop with Close (drains admitted requests).
type Gateway struct {
	opts    Options
	backend Backend

	queue   chan *pending
	drained chan struct{}

	// admitMu orders admission against Close: Upload holds the read lock
	// across its closed-check and enqueue, so once Close holds the write
	// lock no sender is in flight and the queue channel can be closed.
	admitMu sync.RWMutex
	closed  bool

	// degraded marks the gateway as serving from the last committed model:
	// uploads still flow, but the continuous-training loop behind it is
	// down (tuner unreachable, failover in progress). Purely advisory —
	// admission is unaffected.
	degraded atomic.Bool

	cache   *featureCache // nil when disabled
	tenants *admitter     // nil when unthrottled
	keySeed uint64        // cache-key seed derived from the backend precision
	now     func() time.Time

	met    gatewayMetrics
	flight *telemetry.FlightRecorder
	log    *slog.Logger
}

// New starts a gateway over backend and launches its batcher. Close it.
func New(backend Backend, opts Options) (*Gateway, error) {
	if backend == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := &Gateway{
		opts:    opts,
		backend: backend,
		queue:   make(chan *pending, opts.QueueDepth),
		drained: make(chan struct{}),
		now:     time.Now,
		met:     newGatewayMetrics(opts.Registry),
		flight:  opts.Registry.Flight(),
		log:     telemetry.ComponentLogger("serve"),
	}
	// Cache keys are seeded with the backend's precision mode so f64 and
	// int8 deployments derive disjoint key spaces (backends that don't
	// declare a mode hash as plain f64).
	mode := nn.PrecisionF64
	if pm, ok := backend.(PrecisionModer); ok {
		mode = pm.PrecisionMode()
	}
	g.keySeed = hashSeed(mode)
	if opts.CacheEntries > 0 {
		g.cache = newFeatureCache(opts.CacheEntries)
	}
	if opts.TenantRate > 0 {
		g.tenants = newAdmitter(opts.TenantRate, float64(opts.TenantBurst))
	}
	g.met.sloTarget.Set(opts.SLOTarget.Seconds())
	go g.dispatch()
	g.log.Debug("gateway up",
		slog.Int("max_batch", opts.MaxBatch),
		slog.Duration("max_wait", opts.MaxWait),
		slog.Int("queue_depth", opts.QueueDepth),
		slog.String("policy", opts.Policy.String()),
		slog.Duration("slo_target", opts.SLOTarget),
		slog.Int("cache_entries", max(0, opts.CacheEntries)))
	return g, nil
}

// Upload submits one photo and blocks until its batch completes (or the
// request is rejected by admission control). Safe for concurrent use.
func (g *Gateway) Upload(req Request) (inferserver.UploadResult, error) {
	g.admitMu.RLock()
	if g.closed {
		g.admitMu.RUnlock()
		g.met.rejClosed.Inc()
		g.flight.Record(telemetry.FlightShed, "serve", "closed", 0, 0)
		return inferserver.UploadResult{}, ErrClosed
	}
	if g.tenants != nil && !g.tenants.allow(req.Tenant, g.now()) {
		g.admitMu.RUnlock()
		g.met.shedTenant.Inc()
		g.flight.Record(telemetry.FlightShed, "serve", "tenant", 0, 0)
		return inferserver.UploadResult{}, ErrThrottled
	}
	p := pendingPool.Get().(*pending)
	p.req, p.enq = req, g.now()
	if g.opts.Policy == Shed {
		select {
		case g.queue <- p:
		default:
			g.admitMu.RUnlock()
			g.met.shedQueue.Inc()
			g.flight.Record(telemetry.FlightShed, "serve", "queue_full", 0, 0)
			pendingPool.Put(p) // never enqueued: no reply will arrive
			return inferserver.UploadResult{}, ErrOverloaded
		}
	} else {
		g.queue <- p // backpressure: blocks while the queue is full
	}
	g.met.admitted.Inc()
	g.met.queueDepth.Add(1)
	g.admitMu.RUnlock()
	o := <-p.resp
	p.req = Request{}
	pendingPool.Put(p)
	return o.res, o.err
}

// UploadImage is Upload for the default tenant.
func (g *Gateway) UploadImage(img dataset.Image) (inferserver.UploadResult, error) {
	return g.Upload(Request{Img: img})
}

// SetDegraded flips degraded mode: the gateway keeps serving from the
// last committed model while the training loop behind it is unavailable.
// Transitions set the serve_degraded gauge and land in the flight
// recorder with the reason; repeated calls with the same state are no-ops.
func (g *Gateway) SetDegraded(on bool, reason string) {
	if g.degraded.Swap(on) == on {
		return
	}
	if on {
		g.met.degraded.Set(1)
		g.flight.Record(telemetry.FlightDegraded, "serve", reason, 0, 0)
		g.log.Warn("gateway degraded: serving last committed model", slog.String("reason", reason))
	} else {
		g.met.degraded.Set(0)
		g.flight.Record(telemetry.FlightDegraded, "serve", "recovered:"+reason, 0, 0)
		g.log.Info("gateway recovered from degraded mode", slog.String("reason", reason))
	}
}

// Degraded reports whether the gateway is in degraded mode.
func (g *Gateway) Degraded() bool { return g.degraded.Load() }

// Accepting reports whether the gateway is still admitting uploads — the
// /readyz "gateway" health check.
func (g *Gateway) Accepting() bool {
	g.admitMu.RLock()
	defer g.admitMu.RUnlock()
	return !g.closed
}

// Close stops admission (new Uploads fail with ErrClosed), drains every
// already-admitted request through the batcher, and returns once all of
// them have been answered. Idempotent.
func (g *Gateway) Close() {
	g.admitMu.Lock()
	already := g.closed
	g.closed = true
	if !already {
		// No sender can be mid-enqueue while the write lock is held.
		close(g.queue)
	}
	g.admitMu.Unlock()
	<-g.drained
}

// Stats is a point-in-time snapshot of the gateway counters — the same
// numbers the serve_* metrics export, for programmatic assertions
// (conservation checks: Offered == Admitted + Shed* + RejectedClosed and
// Admitted == Completed after Close).
type Stats struct {
	Admitted       int64
	Completed      int64
	Errors         int64
	ShedQueueFull  int64
	ShedTenant     int64
	RejectedClosed int64
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// CacheResultHits counts hits whose memoized classifier result was still
	// current (model version unchanged) and so skipped the head entirely;
	// always <= CacheHits.
	CacheResultHits int64
	Batches         int64
	SLOViolations   int64
}

// Rejected returns the total count of non-admitted requests.
func (s Stats) Rejected() int64 { return s.ShedQueueFull + s.ShedTenant + s.RejectedClosed }

// MeanBatch returns the average coalesced batch size.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Batches)
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Admitted:        g.met.admitted.Value(),
		Completed:       g.met.completed.Value(),
		Errors:          g.met.errors.Value(),
		ShedQueueFull:   g.met.shedQueue.Value(),
		ShedTenant:      g.met.shedTenant.Value(),
		RejectedClosed:  g.met.rejClosed.Value(),
		CacheHits:       g.met.cacheHit.Value(),
		CacheMisses:     g.met.cacheMiss.Value(),
		CacheEvictions:  g.met.cacheEvict.Value(),
		CacheResultHits: g.met.resultHit.Value(),
		Batches:         g.met.batches.Value(),
		SLOViolations:   g.met.sloViol.Value(),
	}
}
