package serve

import (
	"container/list"
	"math"
	"sync"
)

// featureCache is the content-hash-keyed LRU of hot inference state. Keys are
// an FNV-1a hash of the photo's preprocessed feature bytes — the *content*,
// not the image ID — so the same photo re-uploaded or re-scored under a new
// ID hits. Entries keep the full feature vector and compare it on lookup, so
// a hash collision degrades to a miss instead of serving wrong state: a hit
// is always bitwise-identical to recomputing.
//
// Each entry holds two tiers:
//
//   - the frozen-backbone embedding, which no classifier-only delta can
//     change — its invalidation is deliberately a no-op;
//   - the classifier result (label + confidence), memoized *with* the model
//     version it was computed at. The memo is never trusted by the gateway
//     alone: it rides into InferBatch, which re-checks the version under the
//     model lock and recomputes the head (from the cached embedding) if a
//     delta landed in between. Stale memos are refreshed in place, not
//     eagerly invalidated.
type featureCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry
}

type cacheEntry struct {
	key  uint64
	feat []float64 // collision guard: full content, compared on get
	emb  []float64 // frozen-backbone embedding (cache-owned, read-only)

	label   int     // memoized classifier result...
	conf    float64 // ...
	version int     // ...at this model version
}

// cacheHit is what a lookup returns: the embedding tier plus the versioned
// result memo. The embedding is cache-owned and read-only.
type cacheHit struct {
	emb     []float64
	label   int
	conf    float64
	version int
}

func newFeatureCache(capacity int) *featureCache {
	return &featureCache{
		cap:     capacity,
		entries: make(map[uint64]*list.Element, capacity),
		lru:     list.New(),
	}
}

// get returns the cached state for (key, feat), or ok=false on a miss or a
// hash collision.
func (c *featureCache) get(key uint64, feat []float64) (cacheHit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cacheHit{}, false
	}
	e := el.Value.(*cacheEntry)
	if !equalFloatsBitwise(e.feat, feat) {
		return cacheHit{}, false
	}
	c.lru.MoveToFront(el)
	return cacheHit{emb: e.emb, label: e.label, conf: e.conf, version: e.version}, true
}

// put inserts (or refreshes) an entry and reports whether an eviction
// happened. The cache takes ownership of emb; feat is copied.
func (c *featureCache) put(key uint64, feat, emb []float64, label int, conf float64, version int) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.feat = append(e.feat[:0], feat...)
		e.emb = emb
		e.label, e.conf, e.version = label, conf, version
		c.lru.MoveToFront(el)
		return false
	}
	e := &cacheEntry{
		key: key, feat: append([]float64(nil), feat...), emb: emb,
		label: label, conf: conf, version: version,
	}
	c.entries[key] = c.lru.PushFront(e)
	if c.lru.Len() <= c.cap {
		return false
	}
	tail := c.lru.Back()
	c.lru.Remove(tail)
	delete(c.entries, tail.Value.(*cacheEntry).key)
	return true
}

// len returns the current entry count.
func (c *featureCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashSeed folds a string (the backend's precision mode) into FNV-1a state,
// producing the seed cache keys are derived from. Different modes yield
// disjoint key spaces, so an f64 gateway and an int8 gateway can never
// derive the same key for the same content — a quantized embedding is
// deterministic but not bitwise-equal to its f64 counterpart, and must
// never be served in its place.
func hashSeed(mode string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(mode); i++ {
		h ^= uint64(mode[i])
		h *= fnvPrime
	}
	return h
}

// hashFeat is hashFeatSeeded from the plain FNV offset — the unseeded
// content hash (what an f64 backend with no declared mode would produce up
// to the seed prefix). Kept for direct cache tests.
func hashFeat(feat []float64) uint64 {
	return hashFeatSeeded(fnvOffset, feat)
}

// hashFeatSeeded is FNV-1a over the IEEE-754 bytes of the feature vector,
// continued from a precision-mode seed (hashSeed).
func hashFeatSeeded(seed uint64, feat []float64) uint64 {
	h := seed
	for _, f := range feat {
		b := math.Float64bits(f)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

func equalFloatsBitwise(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
