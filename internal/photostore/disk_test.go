package photostore

import (
	"bytes"
	"testing"

	"ndpipe/internal/dataset"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw := dataset.Blob(42, dataset.DefaultJPEGSpec())
	d.Put(42, raw)
	got, err := d.GetRaw(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("raw round trip corrupted")
	}
	pre := bytes.Repeat([]byte{1, 2, 3, 4, 0, 0, 0, 0}, 500)
	if err := d.PutPreproc(42, pre); err != nil {
		t.Fatal(err)
	}
	back, err := d.GetPreproc(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pre) {
		t.Fatal("preproc round trip corrupted")
	}
	comp, err := d.GetPreprocCompressed(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(pre) {
		t.Fatal("compression ineffective on repetitive payload")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 5; id++ {
		d.Put(id, []byte{byte(id), 2, 3})
		if err := d.PutPreproc(id, bytes.Repeat([]byte{byte(id)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	u1 := d.Usage()

	// Reopen: the index must rebuild from disk.
	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 5 {
		t.Fatalf("reopened store sees %d objects", d2.Len())
	}
	ids := d2.IDs()
	for i, id := range []uint64{1, 2, 3, 4, 5} {
		if ids[i] != id {
			t.Fatalf("IDs after reopen: %v", ids)
		}
	}
	got, err := d2.GetPreproc(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{3}, 256)) {
		t.Fatal("preproc corrupted across reopen")
	}
	u2 := d2.Usage()
	if u1.RawBytes != u2.RawBytes || u1.PreprocRawBytes != u2.PreprocRawBytes {
		t.Fatalf("usage accounting diverged across reopen: %+v vs %+v", u1, u2)
	}
}

func TestDiskStoreDelete(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put(9, []byte{1})
	if err := d.PutPreproc(9, []byte{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	d.Delete(9)
	if d.Len() != 0 {
		t.Fatal("delete must remove the object")
	}
	if _, err := d.GetRaw(9); err == nil {
		t.Fatal("deleted raw still readable")
	}
	if _, err := d.GetPreproc(9); err == nil {
		t.Fatal("deleted preproc still readable")
	}
}

func TestDiskStoreMissing(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetRaw(1); err == nil {
		t.Fatal("missing raw must error")
	}
	if _, err := d.GetPreproc(1); err == nil {
		t.Fatal("missing preproc must error")
	}
}

// TestPipeStoreOnDisk runs the full PipeStore ingest + extraction path on a
// disk-backed store — real file I/O through the NPE pipeline.
func TestDiskAndMemoryStoresAgree(t *testing.T) {
	mem := New()
	disk, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9, 8, 7, 0}, 300)
	for _, s := range []ObjectStore{mem, disk} {
		s.Put(5, []byte{1, 2})
		if err := s.PutPreproc(5, payload); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := mem.GetPreproc(5)
	b, _ := disk.GetPreproc(5)
	if !bytes.Equal(a, b) {
		t.Fatal("stores disagree on content")
	}
	ua, ub := mem.Usage(), disk.Usage()
	if ua.PreprocRawBytes != ub.PreprocRawBytes {
		t.Fatalf("usage accounting differs: %+v vs %+v", ua, ub)
	}
}
