package photostore

import (
	"compress/flate"
	"io"
	"sync"
)

// flate.NewWriter allocates ~50 KB of window and hash-chain state per call,
// which dwarfs the actual deflate work for the small preprocessed binaries
// on the upload hot path. Writers (and readers, on the training read path)
// are pooled and Reset between uses instead; a (de)compressor goes back to
// the pool only after a clean Close so a failed stream can never leak state
// into the next one.
var (
	flateWriters sync.Pool
	flateReaders sync.Pool
)

// storedBlockMax is the payload size below which PutPreproc emits deflate
// stored blocks instead of BestSpeed streams: under ~1 KB the per-stream
// LZ77/Huffman setup costs far more time than the compression saves, and the
// output is still a valid deflate stream that GetPreproc/Inflate decode
// unchanged.
const storedBlockMax = 1024

// storedBlock frames payload as a single final deflate stored block
// (BFINAL=1, BTYPE=00, LEN, ^LEN, payload — RFC 1951 §3.2.4). Emitting the
// five-byte header directly skips the flate.Writer machinery entirely on the
// upload hot path; the result inflates through the same reader as any other
// stream. Only valid for payloads that fit one stored block (< 64 KB),
// which storedBlockMax guarantees.
func storedBlock(payload []byte) []byte {
	n := len(payload)
	enc := make([]byte, 0, 5+n)
	enc = append(enc, 0x01, byte(n), byte(n>>8), ^byte(n), ^byte(n>>8))
	return append(enc, payload...)
}

func acquireFlateWriter(w io.Writer) *flate.Writer {
	if zw, ok := flateWriters.Get().(*flate.Writer); ok {
		zw.Reset(w)
		return zw
	}
	zw, _ := flate.NewWriter(w, flate.BestSpeed) // only invalid levels error
	return zw
}

func releaseFlateWriter(zw *flate.Writer) {
	flateWriters.Put(zw)
}

func acquireFlateReader(r io.Reader) io.ReadCloser {
	if zr, ok := flateReaders.Get().(io.ReadCloser); ok {
		_ = zr.(flate.Resetter).Reset(r, nil) // nil dict never errors
		return zr
	}
	return flate.NewReader(r)
}

func releaseFlateReader(zr io.ReadCloser) { flateReaders.Put(zr) }
