package photostore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
)

// ErrCorrupt marks an object whose frame or CRC32C failed verification.
// Callers see it only once per object: detection quarantines the object,
// after which reads report a plain miss until a repair re-puts it.
var ErrCorrupt = errors.New("photostore: checksum mismatch")

// Integrity and error-path instruments, shared by the in-memory and disk
// stores (process-wide; a multi-store test process sums across stores).
var (
	readErrors     = telemetry.Default.Counter("photostore_read_errors_total")
	deleteErrors   = telemetry.Default.Counter("photostore_delete_errors_total")
	corruptObjects = telemetry.Default.Counter("photostore_corrupt_objects_total")
	quarantined    = telemetry.Default.Gauge("photostore_quarantined_objects")
)

// On-disk object framing. Every object part carries its CRC32C at rest so
// silent media rot is caught at read time and by the scrubber, never
// served:
//
//	raw/<id>:   "NDR1" | crc32c(payload) LE | payload
//	pre/<id>.z: uncompressed-len u64 LE | crc32c(deflate) LE | deflate stream
//
// The CRC covers exactly the bytes the header frames, so a flip anywhere
// in the file — header included — fails verification (a damaged CRC field
// reads as a corrupt object, which errs on the safe side).
const (
	rawMagic      = "NDR1"
	rawHeaderSize = 8  // magic + crc
	preHeaderSize = 12 // length + crc
)

// frameRaw wraps a raw payload for disk.
func frameRaw(payload []byte) []byte {
	b := make([]byte, rawHeaderSize+len(payload))
	copy(b, rawMagic)
	binary.LittleEndian.PutUint32(b[4:], durable.Checksum(payload))
	copy(b[rawHeaderSize:], payload)
	return b
}

// parseRawFrame verifies a raw object file and returns its payload
// (aliasing b).
func parseRawFrame(b []byte) ([]byte, error) {
	if len(b) < rawHeaderSize || string(b[:4]) != rawMagic {
		return nil, fmt.Errorf("bad raw frame (%d bytes): %w", len(b), ErrCorrupt)
	}
	payload := b[rawHeaderSize:]
	if got, want := durable.Checksum(payload), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, fmt.Errorf("raw crc %08x != stored %08x: %w", got, want, ErrCorrupt)
	}
	return payload, nil
}

// framePreHeader writes the preproc header for a deflate payload of dlen
// bytes inflating to plen bytes. The CRC must be computed over the deflate
// stream by the caller (it is produced incrementally).
func framePreHeader(plen int, crc uint32) [preHeaderSize]byte {
	var h [preHeaderSize]byte
	binary.LittleEndian.PutUint64(h[:], uint64(plen))
	binary.LittleEndian.PutUint32(h[8:], crc)
	return h
}

// parsePreFrame verifies a preproc object file and returns the uncompressed
// length and the deflate payload (aliasing b).
func parsePreFrame(b []byte) (int, []byte, error) {
	if len(b) < preHeaderSize {
		return 0, nil, fmt.Errorf("bad preproc frame (%d bytes): %w", len(b), ErrCorrupt)
	}
	payload := b[preHeaderSize:]
	if got, want := durable.Checksum(payload), binary.LittleEndian.Uint32(b[8:]); got != want {
		return 0, nil, fmt.Errorf("preproc crc %08x != stored %08x: %w", got, want, ErrCorrupt)
	}
	return int(binary.LittleEndian.Uint64(b)), payload, nil
}
