package photostore

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ndpipe/internal/dataset"
)

func TestPutGetRaw(t *testing.T) {
	s := New()
	blob := dataset.Blob(7, dataset.DefaultJPEGSpec())
	s.Put(7, blob)
	got, err := s.GetRaw(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("raw round trip corrupted")
	}
	// Returned slice must be a copy.
	got[0] ^= 0xFF
	again, _ := s.GetRaw(7)
	if again[0] == got[0] {
		t.Fatal("GetRaw must return a copy")
	}
}

func TestMissingObjects(t *testing.T) {
	s := New()
	if _, err := s.GetRaw(1); err == nil {
		t.Fatal("missing raw must error")
	}
	if _, err := s.GetPreproc(1); err == nil {
		t.Fatal("missing preproc must error")
	}
	if _, err := s.GetPreprocCompressed(1); err == nil {
		t.Fatal("missing compressed must error")
	}
}

func TestPreprocCompressionRoundTrip(t *testing.T) {
	s := New()
	// Float-vector-like repetitive payload compresses.
	payload := bytes.Repeat([]byte{1, 2, 3, 4, 0, 0, 0, 0}, 1000)
	if err := s.PutPreproc(3, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetPreproc(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("preproc round trip corrupted")
	}
	comp, err := s.GetPreprocCompressed(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(payload) {
		t.Fatalf("compressible payload did not shrink: %d >= %d", len(comp), len(payload))
	}
	// Inflate must reverse the stored form.
	raw, err := Inflate(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, payload) {
		t.Fatal("Inflate mismatch")
	}
}

func TestDeleteAndLenAndIDs(t *testing.T) {
	s := New()
	s.Put(5, []byte{1})
	s.Put(2, []byte{2})
	s.Put(9, []byte{3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	ids := s.IDs()
	want := []uint64{2, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v", ids)
		}
	}
	s.Delete(5)
	if s.Len() != 2 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
	if _, err := s.GetRaw(5); err == nil {
		t.Fatal("deleted object must be gone")
	}
}

func TestUsageAccounting(t *testing.T) {
	s := New()
	raw := dataset.Blob(1, dataset.DefaultJPEGSpec())
	s.Put(1, raw)
	pre := bytes.Repeat([]byte{7, 7, 7, 7, 1, 2, 3, 4}, 512)
	if err := s.PutPreproc(1, pre); err != nil {
		t.Fatal(err)
	}
	u := s.Usage()
	if u.RawBytes != int64(len(raw)) {
		t.Fatalf("RawBytes = %d", u.RawBytes)
	}
	if u.PreprocRawBytes != int64(len(pre)) {
		t.Fatalf("PreprocRawBytes = %d", u.PreprocRawBytes)
	}
	if u.CompressionRatio <= 1 {
		t.Fatalf("compression ratio %v should exceed 1", u.CompressionRatio)
	}
	if u.OverheadFraction <= 0 || u.OverheadFraction >= 1 {
		t.Fatalf("overhead fraction %v out of range", u.OverheadFraction)
	}
}

func TestInflateGarbage(t *testing.T) {
	if _, err := Inflate([]byte{0xde, 0xad}); err == nil {
		t.Fatal("garbage must not inflate")
	}
}

// Property: PutPreproc/GetPreproc is identity for arbitrary payloads.
func TestPreprocProperty(t *testing.T) {
	s := New()
	id := uint64(0)
	f := func(payload []byte) bool {
		id++
		if err := s.PutPreproc(id, payload); err != nil {
			return false
		}
		got, err := s.GetPreproc(id)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPutOverwrite(t *testing.T) {
	s := New()
	s.Put(1, []byte{1, 2, 3})
	s.Put(1, []byte{9})
	got, _ := s.GetRaw(1)
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("overwrite failed: %v", got)
	}
	if s.Len() != 1 {
		t.Fatal("overwrite must not duplicate")
	}
}

// Concurrent re-puts racing reads and verifies on the same ID must be
// race-clean and must never quarantine a healthy object: the repair path
// re-puts objects while the background scrub verifies them, so a checksum
// computed over mid-update state would delete good data. Run under -race.
func TestConcurrentPutGetVerifyNoFalseQuarantine(t *testing.T) {
	s := New()
	const id = 9
	blobA := dataset.Blob(id, dataset.DefaultJPEGSpec())
	blobB := dataset.Blob(id+1, dataset.DefaultJPEGSpec())
	pre := bytes.Repeat([]byte{5, 6, 7, 8}, 512)
	s.Put(id, append([]byte(nil), blobA...))
	if err := s.PutPreproc(id, pre); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // writer: alternate healthy contents
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			blob := blobA
			if i%2 == 1 {
				blob = blobB
			}
			s.Put(id, append([]byte(nil), blob...))
			_ = s.PutPreproc(id, pre)
		}
	}()
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.GetRaw(id); err != nil {
				t.Errorf("GetRaw during re-put: %v", err)
				return
			}
			if _, err := s.GetPreprocCompressed(id); err != nil {
				t.Errorf("GetPreprocCompressed during re-put: %v", err)
				return
			}
		}
	}()
	go func() { // scrubber
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.Verify(id); err != nil {
				t.Errorf("Verify during re-put: %v", err)
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
	if n := len(s.Quarantined()); n != 0 {
		t.Fatalf("healthy object quarantined under concurrent re-puts: %d", n)
	}
}
