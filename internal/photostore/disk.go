package photostore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
)

// ObjectStore is the storage contract PipeStores program against; Store
// (in-memory) and DiskStore (durable) both satisfy it.
type ObjectStore interface {
	Put(id uint64, raw []byte)
	PutPreproc(id uint64, preproc []byte) error
	GetRaw(id uint64) ([]byte, error)
	GetPreproc(id uint64) ([]byte, error)
	GetPreprocCompressed(id uint64) ([]byte, error)
	Delete(id uint64)
	Len() int
	IDs() []uint64
	Usage() Usage
}

var (
	_ ObjectStore = (*Store)(nil)
	_ ObjectStore = (*DiskStore)(nil)
)

// DiskStore persists photos under a directory: raw bytes at raw/<id> and
// deflate-compressed preprocessed binaries at pre/<id>.z. Reads really hit
// the filesystem, so the NPE pipeline's load stage exercises actual I/O.
type DiskStore struct {
	dir string
	mu  sync.RWMutex
	// meta tracks sizes so Usage stays O(objects) without stat storms.
	meta map[uint64]*diskMeta
}

type diskMeta struct {
	rawLen  int
	preLen  int // uncompressed
	preComp int // compressed on disk
}

// OpenDir opens (creating if needed) a disk-backed store rooted at dir and
// indexes any objects already present.
func OpenDir(dir string) (*DiskStore, error) {
	for _, sub := range []string{"raw", "pre"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("photostore: %w", err)
		}
	}
	d := &DiskStore{dir: dir, meta: make(map[uint64]*diskMeta)}
	if err := d.reindex(); err != nil {
		return nil, err
	}
	return d, nil
}

// reindex rebuilds the metadata map from the directory contents.
func (d *DiskStore) reindex() error {
	raws, err := os.ReadDir(filepath.Join(d.dir, "raw"))
	if err != nil {
		return err
	}
	for _, e := range raws {
		id, err := strconv.ParseUint(e.Name(), 10, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		d.metaFor(id).rawLen = int(info.Size())
	}
	pres, err := os.ReadDir(filepath.Join(d.dir, "pre"))
	if err != nil {
		return err
	}
	for _, e := range pres {
		name := e.Name()
		if len(name) < 3 || name[len(name)-2:] != ".z" {
			continue
		}
		id, err := strconv.ParseUint(name[:len(name)-2], 10, 64)
		if err != nil {
			continue
		}
		blob, err := os.ReadFile(d.prePath(id))
		if err != nil {
			continue
		}
		m := d.metaFor(id)
		m.preComp = len(blob) - 8
		if len(blob) >= 8 {
			m.preLen = int(binary.LittleEndian.Uint64(blob))
		}
	}
	return nil
}

func (d *DiskStore) metaFor(id uint64) *diskMeta {
	m := d.meta[id]
	if m == nil {
		m = &diskMeta{}
		d.meta[id] = m
	}
	return m
}

func (d *DiskStore) rawPath(id uint64) string {
	return filepath.Join(d.dir, "raw", strconv.FormatUint(id, 10))
}

func (d *DiskStore) prePath(id uint64) string {
	return filepath.Join(d.dir, "pre", strconv.FormatUint(id, 10)+".z")
}

// writeAtomic commits an object crash-consistently: temp file, fsync, rename,
// parent-directory fsync. Before this routed through durable.AtomicWriteFile
// it renamed an unsynced temp file, so a power cut could surface a
// "committed" object as empty — the rename can reach the directory before
// the data reaches the platters.
func writeAtomic(path string, data []byte) error {
	return durable.AtomicWriteFile(path, data, 0o644)
}

// writeErrors counts Puts that failed to reach disk (see DiskStore.Put).
var writeErrors = telemetry.Default.Counter("photostore_write_errors_total")

// Put implements ObjectStore. The interface swallows the error, so a failed
// write is logged, counted (photostore_write_errors_total), and the object
// is marked absent — a stale meta entry would make Usage and Len advertise
// an object GetRaw can't serve.
func (d *DiskStore) Put(id uint64, raw []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeAtomic(d.rawPath(id), raw); err != nil {
		telemetry.ComponentLogger("photostore").Error("raw object write failed",
			slog.Uint64("id", id), slog.Any("err", err))
		writeErrors.Inc()
		// Drop the object entirely: a half-written state must read as a
		// miss, not as whatever bytes the previous version held.
		_ = os.Remove(d.rawPath(id))
		delete(d.meta, id)
		return
	}
	d.metaFor(id).rawLen = len(raw)
}

// PutPreproc implements ObjectStore: the on-disk format is an 8-byte
// little-endian uncompressed length followed by the deflate stream.
func (d *DiskStore) PutPreproc(id uint64, preproc []byte) error {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(preproc)))
	buf.Write(hdr[:])
	if len(preproc) < storedBlockMax {
		buf.Write(storedBlock(preproc))
	} else {
		zw := acquireFlateWriter(&buf)
		if _, err := zw.Write(preproc); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		releaseFlateWriter(zw)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeAtomic(d.prePath(id), buf.Bytes()); err != nil {
		return fmt.Errorf("photostore: %w", err)
	}
	m := d.metaFor(id)
	m.preLen = len(preproc)
	m.preComp = buf.Len() - 8
	return nil
}

// GetRaw implements ObjectStore.
func (d *DiskStore) GetRaw(id uint64) ([]byte, error) {
	b, err := os.ReadFile(d.rawPath(id))
	if err != nil {
		return nil, fmt.Errorf("photostore: no raw object %d: %w", id, err)
	}
	return b, nil
}

// GetPreprocCompressed implements ObjectStore (the deflate payload without
// the length header — what the NPE read stage pulls off disk).
func (d *DiskStore) GetPreprocCompressed(id uint64) ([]byte, error) {
	b, err := os.ReadFile(d.prePath(id))
	if err != nil || len(b) < 8 {
		return nil, fmt.Errorf("photostore: no preprocessed object %d", id)
	}
	return b[8:], nil
}

// GetPreproc implements ObjectStore.
func (d *DiskStore) GetPreproc(id uint64) ([]byte, error) {
	blob, err := d.GetPreprocCompressed(id)
	if err != nil {
		return nil, err
	}
	return Inflate(blob)
}

// Delete implements ObjectStore.
func (d *DiskStore) Delete(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = os.Remove(d.rawPath(id))
	_ = os.Remove(d.prePath(id))
	delete(d.meta, id)
}

// Len implements ObjectStore.
func (d *DiskStore) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.meta)
}

// IDs implements ObjectStore.
func (d *DiskStore) IDs() []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]uint64, 0, len(d.meta))
	for id := range d.meta {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Usage implements ObjectStore.
func (d *DiskStore) Usage() Usage {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var u Usage
	for _, m := range d.meta {
		u.RawBytes += int64(m.rawLen)
		u.PreprocBytes += int64(m.preComp)
		u.PreprocRawBytes += int64(m.preLen)
	}
	if u.RawBytes > 0 {
		u.OverheadFraction = float64(u.PreprocBytes) / float64(u.RawBytes)
	}
	if u.PreprocBytes > 0 {
		u.CompressionRatio = float64(u.PreprocRawBytes) / float64(u.PreprocBytes)
	}
	return u
}
