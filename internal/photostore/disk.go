package photostore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
)

// ObjectStore is the storage contract PipeStores program against; Store
// (in-memory) and DiskStore (durable) both satisfy it.
//
// Integrity contract: every Get verifies the object's CRC32C before
// returning bytes, and a mismatch quarantines the object — corrupt bytes
// are never served, subsequent reads miss until a repair re-puts the
// object and ClearQuarantine lifts the flag.
type ObjectStore interface {
	Put(id uint64, raw []byte)
	PutPreproc(id uint64, preproc []byte) error
	GetRaw(id uint64) ([]byte, error)
	GetPreproc(id uint64) ([]byte, error)
	GetPreprocCompressed(id uint64) ([]byte, error)
	Delete(id uint64)
	Len() int
	IDs() []uint64
	Usage() Usage
	// Verify re-reads object id end to end and checks every present part
	// against its stored CRC32C, returning the bytes read. A failed check
	// quarantines the object and returns an error wrapping ErrCorrupt; a
	// missing object returns a plain miss.
	Verify(id uint64) (int64, error)
	// Quarantined lists objects pulled from serving by a failed
	// verification, ascending. They await read-repair from a replica.
	Quarantined() []uint64
	// ClearQuarantine lifts id's quarantine after a repair re-put has been
	// re-verified, discarding the preserved corrupt copy.
	ClearQuarantine(id uint64)
}

var (
	_ ObjectStore = (*Store)(nil)
	_ ObjectStore = (*DiskStore)(nil)
)

// DiskStore persists photos under a directory: CRC32C-framed raw bytes at
// raw/<id> and framed deflate-compressed preprocessed binaries at
// pre/<id>.z (see integrity.go for the frames). Reads really hit the
// filesystem, so the NPE pipeline's load stage exercises actual I/O — and
// really verify, so at-rest rot surfaces as a quarantine, not as corrupt
// pixels served to a client. Quarantined objects are moved aside to
// quar/<id>.{raw,pre} rather than deleted: the corrupt bytes are evidence
// (which sector pattern, header or payload), and keeping them out of the
// live tree means no code path can serve them while repair is pending.
type DiskStore struct {
	dir string
	mu  sync.RWMutex
	// meta tracks sizes so Usage stays O(objects) without stat storms.
	meta map[uint64]*diskMeta
	// quar marks objects pulled from serving by a failed verification.
	quar   map[uint64]bool
	faults *durable.Faults // at-rest corruption injection (tests); nil = off
}

// SetFaults arms seeded at-rest corruption (durable.Bitflip /
// durable.Truncate rules fire after each successful object write).
func (d *DiskStore) SetFaults(f *durable.Faults) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults = f
}

type diskMeta struct {
	rawLen  int
	preLen  int // uncompressed
	preComp int // compressed on disk
}

// OpenDir opens (creating if needed) a disk-backed store rooted at dir and
// indexes any objects already present.
func OpenDir(dir string) (*DiskStore, error) {
	for _, sub := range []string{"raw", "pre", "quar"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("photostore: %w", err)
		}
	}
	d := &DiskStore{dir: dir, meta: make(map[uint64]*diskMeta), quar: make(map[uint64]bool)}
	if err := d.reindex(); err != nil {
		return nil, err
	}
	return d, nil
}

// reindex rebuilds the metadata map from the directory contents.
func (d *DiskStore) reindex() error {
	raws, err := os.ReadDir(filepath.Join(d.dir, "raw"))
	if err != nil {
		return err
	}
	for _, e := range raws {
		id, err := strconv.ParseUint(e.Name(), 10, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		// Sizes come from the directory walk; frames are verified lazily by
		// reads and the scrubber, so reopening a big store stays cheap. A
		// file shorter than its header is damaged — the first Verify or Get
		// will quarantine it.
		n := int(info.Size()) - rawHeaderSize
		if n < 0 {
			n = 0
		}
		d.metaFor(id).rawLen = n
	}
	pres, err := os.ReadDir(filepath.Join(d.dir, "pre"))
	if err != nil {
		return err
	}
	for _, e := range pres {
		name := e.Name()
		if len(name) < 3 || name[len(name)-2:] != ".z" {
			continue
		}
		id, err := strconv.ParseUint(name[:len(name)-2], 10, 64)
		if err != nil {
			continue
		}
		blob, err := os.ReadFile(d.prePath(id))
		if err != nil {
			continue
		}
		m := d.metaFor(id)
		if len(blob) >= preHeaderSize {
			m.preComp = len(blob) - preHeaderSize
			m.preLen = int(binary.LittleEndian.Uint64(blob))
		}
	}
	// Quarantine survives restarts: the moved-aside files re-mark their IDs
	// so repair still knows what it owes.
	quars, err := os.ReadDir(filepath.Join(d.dir, "quar"))
	if err != nil {
		return err
	}
	for _, e := range quars {
		name, _, ok := strings.Cut(e.Name(), ".")
		if !ok {
			continue
		}
		id, err := strconv.ParseUint(name, 10, 64)
		if err != nil {
			continue
		}
		if !d.quar[id] {
			d.quar[id] = true
			quarantined.Add(1)
		}
	}
	return nil
}

func (d *DiskStore) metaFor(id uint64) *diskMeta {
	m := d.meta[id]
	if m == nil {
		m = &diskMeta{}
		d.meta[id] = m
	}
	return m
}

func (d *DiskStore) rawPath(id uint64) string {
	return filepath.Join(d.dir, "raw", strconv.FormatUint(id, 10))
}

func (d *DiskStore) prePath(id uint64) string {
	return filepath.Join(d.dir, "pre", strconv.FormatUint(id, 10)+".z")
}

func (d *DiskStore) quarPath(id uint64, part string) string {
	return filepath.Join(d.dir, "quar", strconv.FormatUint(id, 10)+"."+part)
}

// writeAtomic commits an object crash-consistently: temp file, fsync, rename,
// parent-directory fsync. Before this routed through durable.AtomicWriteFile
// it renamed an unsynced temp file, so a power cut could surface a
// "committed" object as empty — the rename can reach the directory before
// the data reaches the platters.
func writeAtomic(path string, data []byte) error {
	return durable.AtomicWriteFile(path, data, 0o644)
}

// writeErrors counts Puts that failed to reach disk (see DiskStore.Put).
var writeErrors = telemetry.Default.Counter("photostore_write_errors_total")

// Put implements ObjectStore. The interface swallows the error, so a failed
// write is logged, counted (photostore_write_errors_total), and the object
// is marked absent — a stale meta entry would make Usage and Len advertise
// an object GetRaw can't serve.
func (d *DiskStore) Put(id uint64, raw []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeAtomic(d.rawPath(id), frameRaw(raw)); err != nil {
		telemetry.ComponentLogger("photostore").Error("raw object write failed",
			slog.Uint64("id", id), slog.Any("err", err))
		writeErrors.Inc()
		// Drop the object entirely: a half-written state must read as a
		// miss, not as whatever bytes the previous version held.
		_ = os.Remove(d.rawPath(id))
		delete(d.meta, id)
		return
	}
	d.metaFor(id).rawLen = len(raw)
	if err := d.faults.Object(d.rawPath(id)); err != nil {
		telemetry.ComponentLogger("photostore").Warn("fault injection failed",
			slog.Uint64("id", id), slog.Any("err", err))
	}
}

// PutPreproc implements ObjectStore: the on-disk format is the
// length+CRC32C header of integrity.go followed by the deflate stream.
func (d *DiskStore) PutPreproc(id uint64, preproc []byte) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, preHeaderSize)) // patched below once the CRC is known
	if len(preproc) < storedBlockMax {
		buf.Write(storedBlock(preproc))
	} else {
		zw := acquireFlateWriter(&buf)
		if _, err := zw.Write(preproc); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		releaseFlateWriter(zw)
	}
	frame := buf.Bytes()
	hdr := framePreHeader(len(preproc), durable.Checksum(frame[preHeaderSize:]))
	copy(frame, hdr[:])
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := writeAtomic(d.prePath(id), frame); err != nil {
		return fmt.Errorf("photostore: %w", err)
	}
	m := d.metaFor(id)
	m.preLen = len(preproc)
	m.preComp = buf.Len() - preHeaderSize
	if err := d.faults.Object(d.prePath(id)); err != nil {
		telemetry.ComponentLogger("photostore").Warn("fault injection failed",
			slog.Uint64("id", id), slog.Any("err", err))
	}
	return nil
}

// GetRaw implements ObjectStore: the frame is verified on every read, so
// at-rest rot surfaces as a quarantine + miss, never as corrupt payload.
func (d *DiskStore) GetRaw(id uint64) ([]byte, error) {
	b, err := os.ReadFile(d.rawPath(id))
	if err != nil {
		if !os.IsNotExist(err) {
			readErrors.Inc()
		}
		return nil, fmt.Errorf("photostore: no raw object %d: %w", id, err)
	}
	payload, err := parseRawFrame(b)
	if err != nil {
		d.quarantine(id, "raw", err)
		return nil, fmt.Errorf("photostore: raw object %d: %w", id, err)
	}
	return payload, nil
}

// GetPreprocCompressed implements ObjectStore (the CRC-verified deflate
// payload without the header — what the NPE read stage pulls off disk).
func (d *DiskStore) GetPreprocCompressed(id uint64) ([]byte, error) {
	b, err := os.ReadFile(d.prePath(id))
	if err != nil {
		if !os.IsNotExist(err) {
			readErrors.Inc()
		}
		return nil, fmt.Errorf("photostore: no preprocessed object %d: %w", id, err)
	}
	_, payload, perr := parsePreFrame(b)
	if perr != nil {
		d.quarantine(id, "pre", perr)
		return nil, fmt.Errorf("photostore: preprocessed object %d: %w", id, perr)
	}
	return payload, nil
}

// GetPreproc implements ObjectStore.
func (d *DiskStore) GetPreproc(id uint64) ([]byte, error) {
	blob, err := d.GetPreprocCompressed(id)
	if err != nil {
		return nil, err
	}
	out, err := Inflate(blob)
	if err != nil {
		// The CRC passed but the stream will not inflate — a store bug, not
		// media rot; surface it on the read-error counter.
		readErrors.Inc()
		return nil, err
	}
	return out, nil
}

// Delete implements ObjectStore. The interface swallows errors, so a
// removal that fails for any reason other than the file already being gone
// is logged and counted (photostore_delete_errors_total): the meta entry
// is dropped regardless — callers asked for the object to be gone — but a
// survivor file would resurrect the object at the next reindex, which the
// counter makes visible instead of silent.
func (d *DiskStore) Delete(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range []string{d.rawPath(id), d.prePath(id), d.quarPath(id, "raw"), d.quarPath(id, "pre")} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			telemetry.ComponentLogger("photostore").Error("object delete failed",
				slog.Uint64("id", id), slog.String("path", p), slog.Any("err", err))
			deleteErrors.Inc()
		}
	}
	delete(d.meta, id)
	if d.quar[id] {
		delete(d.quar, id)
		quarantined.Add(-1)
	}
}

// Len implements ObjectStore.
func (d *DiskStore) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.meta)
}

// IDs implements ObjectStore.
func (d *DiskStore) IDs() []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]uint64, 0, len(d.meta))
	for id := range d.meta {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// quarantine pulls a corrupt object from serving: both parts move to
// quar/ (preserved as evidence — see the DiskStore comment for why not
// delete), the meta entry drops so Len/IDs/Usage stop advertising it, and
// the ID lands on the Quarantined list for read-repair. Idempotent under
// concurrent detection.
func (d *DiskStore) quarantine(id uint64, part string, why error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.quar[id] {
		return
	}
	_ = os.Rename(d.rawPath(id), d.quarPath(id, "raw"))
	_ = os.Rename(d.prePath(id), d.quarPath(id, "pre"))
	delete(d.meta, id)
	d.quar[id] = true
	corruptObjects.Inc()
	quarantined.Add(1)
	telemetry.ComponentLogger("photostore").Warn("object quarantined",
		slog.Uint64("id", id), slog.String("part", part), slog.Any("err", why))
}

// Verify implements ObjectStore.
func (d *DiskStore) Verify(id uint64) (int64, error) {
	d.mu.RLock()
	_, ok := d.meta[id]
	isQuar := d.quar[id]
	d.mu.RUnlock()
	if !ok {
		if isQuar {
			return 0, fmt.Errorf("photostore: object %d quarantined: %w", id, ErrCorrupt)
		}
		return 0, fmt.Errorf("photostore: no object %d", id)
	}
	var n int64
	if b, err := os.ReadFile(d.rawPath(id)); err == nil {
		if _, perr := parseRawFrame(b); perr != nil {
			d.quarantine(id, "raw", perr)
			return n, fmt.Errorf("photostore: raw object %d: %w", id, perr)
		}
		n += int64(len(b))
	} else if !os.IsNotExist(err) {
		readErrors.Inc()
		return n, err
	}
	if b, err := os.ReadFile(d.prePath(id)); err == nil {
		if _, _, perr := parsePreFrame(b); perr != nil {
			d.quarantine(id, "pre", perr)
			return n, fmt.Errorf("photostore: preprocessed object %d: %w", id, perr)
		}
		n += int64(len(b))
	} else if !os.IsNotExist(err) {
		readErrors.Inc()
		return n, err
	}
	return n, nil
}

// Quarantined implements ObjectStore.
func (d *DiskStore) Quarantined() []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]uint64, 0, len(d.quar))
	for id := range d.quar {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ClearQuarantine implements ObjectStore.
func (d *DiskStore) ClearQuarantine(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.quar[id] {
		return
	}
	_ = os.Remove(d.quarPath(id, "raw"))
	_ = os.Remove(d.quarPath(id, "pre"))
	delete(d.quar, id)
	quarantined.Add(-1)
}

// Usage implements ObjectStore.
func (d *DiskStore) Usage() Usage {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var u Usage
	for _, m := range d.meta {
		u.RawBytes += int64(m.rawLen)
		u.PreprocBytes += int64(m.preComp)
		u.PreprocRawBytes += int64(m.preLen)
	}
	if u.RawBytes > 0 {
		u.OverheadFraction = float64(u.PreprocBytes) / float64(u.RawBytes)
	}
	if u.PreprocBytes > 0 {
		u.CompressionRatio = float64(u.PreprocRawBytes) / float64(u.PreprocBytes)
	}
	return u
}
