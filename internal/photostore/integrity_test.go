package photostore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
)

func counter(name string) int64 { return telemetry.Default.Counter(name).Value() }

func putBoth(t *testing.T, s ObjectStore, id uint64, n int) ([]byte, []byte) {
	t.Helper()
	raw := make([]byte, n)
	pre := make([]byte, n/2)
	for i := range raw {
		raw[i] = byte(id + uint64(i)*3)
	}
	for i := range pre {
		pre[i] = byte(id + uint64(i)*5)
	}
	s.Put(id, raw)
	if err := s.PutPreproc(id, pre); err != nil {
		t.Fatal(err)
	}
	return raw, pre
}

func openDisk(t *testing.T) (*DiskStore, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

// flipBit corrupts one payload bit of the file at path in place.
func flipBit(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[off] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A bit-flip at rest must never be served: the read fails with ErrCorrupt,
// the object is quarantined (moved to quar/, out of the live tree), and
// subsequent reads miss.
func TestDiskBitflipNeverServed(t *testing.T) {
	d, dir := openDisk(t)
	raw, _ := putBoth(t, d, 42, 256)
	flipBit(t, d.rawPath(42), rawHeaderSize+17)

	before := counter("photostore_corrupt_objects_total")
	got, err := d.GetRaw(42)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetRaw on flipped object: err=%v, want ErrCorrupt", err)
	}
	if got != nil {
		t.Fatal("corrupt payload returned to caller")
	}
	if counter("photostore_corrupt_objects_total") != before+1 {
		t.Fatal("corruption not counted")
	}
	if q := d.Quarantined(); len(q) != 1 || q[0] != 42 {
		t.Fatalf("Quarantined() = %v, want [42]", q)
	}
	if d.Len() != 0 {
		t.Fatalf("quarantined object still indexed (Len=%d)", d.Len())
	}
	// The corrupt bytes are preserved as evidence, outside the live tree.
	if _, err := os.Stat(filepath.Join(dir, "quar", "42.raw")); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	// Second read: plain miss, not the old corrupt bytes.
	if _, err := d.GetRaw(42); errors.Is(err, ErrCorrupt) || err == nil {
		t.Fatalf("post-quarantine read: err=%v, want plain miss", err)
	}
	// Repair: re-put, verify, clear — then the object serves again.
	d.Put(42, raw)
	if _, err := d.Verify(42); err != nil {
		t.Fatalf("Verify after repair: %v", err)
	}
	d.ClearQuarantine(42)
	if q := d.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine not cleared: %v", q)
	}
	back, err := d.GetRaw(42)
	if err != nil || !bytes.Equal(back, raw) {
		t.Fatalf("repaired object wrong: err=%v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quar", "42.raw")); !os.IsNotExist(err) {
		t.Fatal("evidence copy not discarded after repair")
	}
}

func TestDiskVerifyCatchesPreprocFlipAndTruncation(t *testing.T) {
	d, _ := openDisk(t)
	putBoth(t, d, 7, 4096)
	putBoth(t, d, 8, 4096)
	if _, err := d.Verify(7); err != nil {
		t.Fatalf("healthy Verify: %v", err)
	}
	flipBit(t, d.prePath(7), preHeaderSize+100)
	if _, err := d.Verify(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on flipped preproc: %v", err)
	}
	if err := os.Truncate(d.rawPath(8), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Verify(8); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on truncated raw: %v", err)
	}
	if q := d.Quarantined(); len(q) != 2 {
		t.Fatalf("Quarantined() = %v, want both", q)
	}
}

// Quarantine state must survive a restart: the moved-aside files re-mark
// their IDs so repair still knows what it owes.
func TestQuarantineSurvivesReopen(t *testing.T) {
	d, dir := openDisk(t)
	putBoth(t, d, 5, 128)
	flipBit(t, d.rawPath(5), rawHeaderSize)
	if _, err := d.GetRaw(5); !errors.Is(err, ErrCorrupt) {
		t.Fatal("flip not detected")
	}
	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if q := d2.Quarantined(); len(q) != 1 || q[0] != 5 {
		t.Fatalf("reopened Quarantined() = %v, want [5]", q)
	}
}

// The seeded durable fault hook corrupts objects at rest deterministically;
// scrubbing with Verify finds exactly the damaged one.
func TestSetFaultsInjectsAtRestCorruption(t *testing.T) {
	d, _ := openDisk(t)
	f, err := durable.ParseFaults("seed=4;bitflip:after=3")
	if err != nil {
		t.Fatal(err)
	}
	d.SetFaults(f)
	for id := uint64(1); id <= 4; id++ {
		putBoth(t, d, id, 512) // 2 object writes each: fault fires on the 3rd write
	}
	corrupt := 0
	for id := uint64(1); id <= 4; id++ {
		if _, err := d.Verify(id); errors.Is(err, ErrCorrupt) {
			corrupt++
		}
	}
	if corrupt != 1 {
		t.Fatalf("found %d corrupt objects, want exactly 1", corrupt)
	}
}

// Delete swallows errors at the interface, so a failed removal must be
// counted — a survivor file resurrects the object at the next reindex.
func TestDeleteSurfacesErrors(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	putBoth(t, d, 9, 64)
	// Deleting a missing object stays silent.
	before := counter("photostore_delete_errors_total")
	d.Delete(12345)
	if got := counter("photostore_delete_errors_total"); got != before {
		t.Fatal("delete of absent object counted as an error")
	}
	breakRawDir(t, dir) // raw/ becomes a file: Remove(raw/9) fails with ENOTDIR
	before = counter("photostore_delete_errors_total")
	d.Delete(9)
	if got := counter("photostore_delete_errors_total"); got != before+1 {
		t.Fatalf("photostore_delete_errors_total went %d -> %d, want +1", before, got)
	}
}

// The in-memory store honors the same contract: mutating a slice after
// handing it to Put is detected at read time and quarantined.
func TestMemoryStoreDetectsMutatedSlice(t *testing.T) {
	s := New()
	raw := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	s.Put(3, raw)
	raw[2] ^= 0xFF // caller violates the ownership contract
	if _, err := s.GetRaw(3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mutated slice served: %v", err)
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != 3 {
		t.Fatalf("Quarantined() = %v, want [3]", q)
	}
	s.Put(3, []byte{9, 9})
	if _, err := s.Verify(3); err != nil {
		t.Fatalf("Verify after repair: %v", err)
	}
	s.ClearQuarantine(3)
	if len(s.Quarantined()) != 0 {
		t.Fatal("quarantine not cleared")
	}
}

func TestVerifyHealthyReportsBytes(t *testing.T) {
	for _, s := range []ObjectStore{New(), mustDisk(t)} {
		putBoth(t, s, 1, 1000)
		n, err := s.Verify(1)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1000 {
			t.Fatalf("Verify read %d bytes, want >= raw size", n)
		}
	}
}

func mustDisk(t *testing.T) *DiskStore {
	t.Helper()
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}
