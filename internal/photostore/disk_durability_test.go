package photostore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ndpipe/internal/telemetry"
)

// TestWriteAtomicLeavesNoTemp is the regression test for the unsynced-rename
// bug: writeAtomic must route through durable.AtomicWriteFile, which fsyncs
// the temp file and the parent directory and never leaves a temp file behind.
func TestWriteAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj")
	if err := writeAtomic(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite: the previous content must be fully replaced, atomically.
	if err := writeAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("overwrite read back %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "obj" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after atomic writes: %v", names)
	}
}

// breakRawDir makes every future raw write fail by replacing the raw/
// subdirectory with a regular file (ENOTDIR defeats even a root test run,
// which permission bits would not).
func breakRawDir(t *testing.T, dir string) {
	t.Helper()
	raw := filepath.Join(dir, "raw")
	if err := os.RemoveAll(raw); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(raw, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPutSurfacesWriteErrors: ObjectStore.Put swallows the error, so a failed
// write must be logged, counted in photostore_write_errors_total, and the
// object must read as a miss rather than linger in the index.
func TestPutSurfacesWriteErrors(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	breakRawDir(t, dir)

	before := telemetry.Default.Counter("photostore_write_errors_total").Value()
	d.Put(7, []byte{1, 2, 3})
	after := telemetry.Default.Counter("photostore_write_errors_total").Value()
	if after != before+1 {
		t.Fatalf("photostore_write_errors_total went %d -> %d, want +1", before, after)
	}
	if d.Len() != 0 {
		t.Fatalf("failed Put left %d objects in the index", d.Len())
	}
	if _, err := d.GetRaw(7); err == nil {
		t.Fatal("failed Put still readable")
	}
}

// TestPutFailureEvictsStaleObject: when an overwrite of an existing object
// fails, the previous version must not survive in the index — a half-written
// state must read as a miss, not as the old bytes presented as the new ones.
func TestPutFailureEvictsStaleObject(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(9, []byte("v1"))
	if d.Len() != 1 {
		t.Fatalf("seed Put failed, Len=%d", d.Len())
	}
	breakRawDir(t, dir)
	d.Put(9, []byte("v2"))
	if d.Len() != 0 {
		t.Fatalf("failed overwrite left %d objects indexed", d.Len())
	}
	if _, err := d.GetRaw(9); err == nil {
		t.Fatal("object readable after failed overwrite eviction")
	}
	if u := d.Usage(); u.RawBytes != 0 {
		t.Fatalf("usage still accounts %d raw bytes for evicted object", u.RawBytes)
	}
}
