// Package photostore is the object store inside every storage server: it
// holds each photo's raw bytes and, when preprocessing is offloaded at
// upload time (§5.4), the deflate-compressed preprocessed binary alongside
// it. It tracks the storage overhead that compression is there to contain.
package photostore

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"

	"ndpipe/internal/durable"
	"ndpipe/internal/telemetry"
)

// Store is a thread-safe in-memory object store. It carries the same
// integrity contract as DiskStore: each part's CRC32C is captured at Put
// time and re-checked on every read, so even in-memory corruption (a
// caller mutating a slice it handed over) is caught and quarantined, not
// served.
type Store struct {
	mu      sync.RWMutex
	objects map[uint64]*object
	quar    map[uint64]bool
}

type object struct {
	raw     []byte
	preproc []byte // deflate-compressed; nil when not offloaded
	rawLen  int
	preLen  int    // uncompressed preprocessed length
	rawCRC  uint32 // CRC32C of raw
	preCRC  uint32 // CRC32C of the compressed preproc bytes
}

// New creates an empty store.
func New() *Store {
	return &Store{objects: make(map[uint64]*object), quar: make(map[uint64]bool)}
}

// Put stores a photo's raw bytes. The store takes ownership of the slice —
// callers must not modify it afterwards. (Uploads are immutable content, and
// copying a 27 KB photo per Put dominated the ingest hot path.)
func (s *Store) Put(id uint64, raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[id]
	if o == nil {
		o = &object{}
		s.objects[id] = o
	}
	o.raw = raw
	o.rawLen = len(raw)
	o.rawCRC = durable.Checksum(raw)
}

// PutPreproc attaches the preprocessed binary for id, compressing it with
// deflate before storage. The photo need not have raw bytes yet.
func (s *Store) PutPreproc(id uint64, preproc []byte) error {
	var enc []byte
	if len(preproc) < storedBlockMax {
		enc = storedBlock(preproc)
	} else {
		var buf bytes.Buffer
		zw := acquireFlateWriter(&buf)
		if _, err := zw.Write(preproc); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		releaseFlateWriter(zw)
		enc = buf.Bytes()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objects[id]
	if o == nil {
		o = &object{}
		s.objects[id] = o
	}
	o.preproc = enc
	o.preLen = len(preproc)
	o.preCRC = durable.Checksum(enc)
	return nil
}

// GetRaw returns a copy of the photo's raw bytes, verified against the
// CRC captured at Put time.
func (s *Store) GetRaw(id uint64) ([]byte, error) {
	// Copy the bytes and CRC while still holding the read lock: Put mutates
	// the *object in place under the write lock, so a checksum taken over
	// the shared slice after the unlock could see mid-update state and
	// quarantine (delete) a healthy object.
	s.mu.RLock()
	o := s.objects[id]
	ok := o != nil && o.raw != nil
	var raw []byte
	var crc uint32
	if ok {
		raw = append(make([]byte, 0, len(o.raw)), o.raw...)
		crc = o.rawCRC
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("photostore: no raw object %d", id)
	}
	if durable.Checksum(raw) != crc {
		s.quarantine(id, "raw")
		return nil, fmt.Errorf("photostore: raw object %d: %w", id, ErrCorrupt)
	}
	return raw, nil
}

// GetPreproc returns the decompressed preprocessed binary for id.
func (s *Store) GetPreproc(id uint64) ([]byte, error) {
	blob, err := s.GetPreprocCompressed(id)
	if err != nil {
		return nil, err
	}
	zr := acquireFlateReader(bytes.NewReader(blob))
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("photostore: inflate %d: %w", id, err)
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	releaseFlateReader(zr)
	return out, nil
}

// GetPreprocCompressed returns the stored (compressed) preprocessed bytes —
// what actually leaves the disk on the NPE read stage — CRC-verified.
func (s *Store) GetPreprocCompressed(id uint64) ([]byte, error) {
	// Same locking discipline as GetRaw: snapshot bytes + CRC under the
	// read lock, verify the private copy after it.
	s.mu.RLock()
	o := s.objects[id]
	ok := o != nil && o.preproc != nil
	var pre []byte
	var crc uint32
	if ok {
		pre = append(make([]byte, 0, len(o.preproc)), o.preproc...)
		crc = o.preCRC
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("photostore: no preprocessed object %d", id)
	}
	if durable.Checksum(pre) != crc {
		s.quarantine(id, "pre")
		return nil, fmt.Errorf("photostore: preprocessed object %d: %w", id, ErrCorrupt)
	}
	return pre, nil
}

// Delete removes the object entirely, quarantine state included.
func (s *Store) Delete(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, id)
	if s.quar[id] {
		delete(s.quar, id)
		quarantined.Add(-1)
	}
}

// quarantine drops a corrupt object from serving and marks it for repair.
func (s *Store) quarantine(id uint64, part string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quar[id] {
		return
	}
	delete(s.objects, id)
	s.quar[id] = true
	corruptObjects.Inc()
	quarantined.Add(1)
	telemetry.ComponentLogger("photostore").Warn("object quarantined",
		slog.Uint64("id", id), slog.String("part", part))
}

// Verify implements ObjectStore. The checksums are computed while the read
// lock is held — Put/PutPreproc replace the object's fields in place under
// the write lock, and a checksum racing such a re-put (e.g. background
// scrub against an ingest) would falsely quarantine a healthy object.
// quarantine itself takes the write lock, so it runs after the unlock, on a
// verdict reached over consistent state.
func (s *Store) Verify(id uint64) (int64, error) {
	s.mu.RLock()
	o := s.objects[id]
	isQuar := s.quar[id]
	var n int64
	bad := ""
	if o != nil {
		if o.raw != nil {
			if durable.Checksum(o.raw) != o.rawCRC {
				bad = "raw"
			} else {
				n += int64(len(o.raw))
			}
		}
		if bad == "" && o.preproc != nil {
			if durable.Checksum(o.preproc) != o.preCRC {
				bad = "pre"
			} else {
				n += int64(len(o.preproc))
			}
		}
	}
	s.mu.RUnlock()
	if o == nil {
		if isQuar {
			return 0, fmt.Errorf("photostore: object %d quarantined: %w", id, ErrCorrupt)
		}
		return 0, fmt.Errorf("photostore: no object %d", id)
	}
	switch bad {
	case "raw":
		s.quarantine(id, bad)
		return n, fmt.Errorf("photostore: raw object %d: %w", id, ErrCorrupt)
	case "pre":
		s.quarantine(id, bad)
		return n, fmt.Errorf("photostore: preprocessed object %d: %w", id, ErrCorrupt)
	}
	return n, nil
}

// Quarantined implements ObjectStore.
func (s *Store) Quarantined() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint64, 0, len(s.quar))
	for id := range s.quar {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ClearQuarantine implements ObjectStore.
func (s *Store) ClearQuarantine(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quar[id] {
		delete(s.quar, id)
		quarantined.Add(-1)
	}
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// IDs returns all object IDs in ascending order.
func (s *Store) IDs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint64, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Usage reports storage accounting.
type Usage struct {
	RawBytes         int64 // raw photo bytes
	PreprocBytes     int64 // compressed preprocessed bytes on disk
	PreprocRawBytes  int64 // what they would occupy uncompressed
	OverheadFraction float64
	CompressionRatio float64 // uncompressed/compressed
}

// Usage returns the store's current accounting (the §5.4 17.5 %-overhead
// discussion in numbers).
func (s *Store) Usage() Usage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var u Usage
	for _, o := range s.objects {
		u.RawBytes += int64(o.rawLen)
		u.PreprocBytes += int64(len(o.preproc))
		u.PreprocRawBytes += int64(o.preLen)
	}
	if u.RawBytes > 0 {
		u.OverheadFraction = float64(u.PreprocBytes) / float64(u.RawBytes)
	}
	if u.PreprocBytes > 0 {
		u.CompressionRatio = float64(u.PreprocRawBytes) / float64(u.PreprocBytes)
	}
	return u
}

// Inflate decompresses a deflate blob produced by PutPreproc — exposed for
// the NPE decompression stage, which reads compressed bytes off disk and
// inflates them on its CPU budget.
func Inflate(blob []byte) ([]byte, error) {
	zr := acquireFlateReader(bytes.NewReader(blob))
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("photostore: inflate: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	releaseFlateReader(zr)
	return out, nil
}
