package ftdmp

import (
	"fmt"
	"math"
)

// InterRunLossGap computes Δ from Lemma 5.2: with confidence θ, the initial
// loss of run p+1 exceeds the converged loss of run p by at most
//
//	Δ = sqrt( log(2P/θ) / (2m) )
//
// where P is the number of model weights and m the number of training
// samples in a run. Similar sub-dataset distributions (condition iii) keep
// the realized gap well under this Hoeffding bound.
func InterRunLossGap(numWeights, numSamples int, confidence float64) (float64, error) {
	if numWeights <= 0 || numSamples <= 0 {
		return 0, fmt.Errorf("ftdmp: weights and samples must be positive")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("ftdmp: confidence must be in (0,1)")
	}
	return math.Sqrt(math.Log(2*float64(numWeights)/confidence) / (2 * float64(numSamples))), nil
}

// ConvergenceIterations computes the Theorem 5.1 bound on the iterations T₂
// needed for a pipelined run starting from loss l₁+Δ to reach target loss
// ε₂, for a depth-N linear network trained with learning rate η and
// deficiency margin c:
//
//	T₂ ≥ log((l₁+Δ)/ε₂) / (η · c^(2(N−1)/N))
//
// It returns the bound rounded up to a whole iteration.
func ConvergenceIterations(eta, margin float64, layers int, prevLoss, gap, targetLoss float64) (int, error) {
	switch {
	case eta <= 0:
		return 0, fmt.Errorf("ftdmp: learning rate must be positive")
	case margin <= 0:
		return 0, fmt.Errorf("ftdmp: deficiency margin must be positive")
	case layers < 2:
		return 0, fmt.Errorf("ftdmp: theorem requires N ≥ 2 layers")
	case targetLoss <= 0:
		return 0, fmt.Errorf("ftdmp: target loss must be positive")
	case prevLoss < 0 || gap < 0:
		return 0, fmt.Errorf("ftdmp: losses must be non-negative")
	}
	start := prevLoss + gap
	if start <= targetLoss {
		return 0, nil // already converged
	}
	n := float64(layers)
	rate := eta * math.Pow(margin, 2*(n-1)/n)
	return int(math.Ceil(math.Log(start/targetLoss) / rate)), nil
}

// LossBoundAfter computes the Theorem 5.1 loss guarantee after t iterations
// of a run starting at loss start: start · exp(−η·c^(2(N−1)/N)·t).
func LossBoundAfter(eta, margin float64, layers int, start float64, t int) float64 {
	n := float64(layers)
	rate := eta * math.Pow(margin, 2*(n-1)/n)
	return start * math.Exp(-rate*float64(t))
}
