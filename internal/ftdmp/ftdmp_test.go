package ftdmp

import (
	"math"
	"math/rand"
	"testing"

	"ndpipe/internal/dataset"
	"ndpipe/internal/model"
	"ndpipe/internal/nn"
)

func baseConfig(stores int) Config {
	m := model.ResNet50()
	return Config{
		Model:  m,
		Cut:    m.LastFrozen(),
		Stores: stores,
		Images: 120_000,
	}
}

func TestEstimateBasics(t *testing.T) {
	res, err := Estimate(baseConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSec <= 0 || res.StoreStageSec <= 0 || res.TunerStageSec <= 0 {
		t.Fatalf("non-positive stage times: %+v", res)
	}
	// Feature traffic = images × 4 KB (2048 fp16 floats) for ResNet50.
	want := int64(120_000) * 2048 * 2
	if res.FeatureTraffic != want {
		t.Fatalf("feature traffic %d, want %d", res.FeatureTraffic, want)
	}
	if res.SyncTraffic != 0 {
		t.Fatal("FT-DMP cut must not require weight sync")
	}
}

func TestStoreStageScalesWithStores(t *testing.T) {
	r1, err := Estimate(baseConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Estimate(baseConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	ratio := r1.StoreStageSec / r8.StoreStageSec
	if math.Abs(ratio-8) > 0.5 {
		t.Fatalf("store stage should scale ≈linearly: 1→8 stores ratio %.2f", ratio)
	}
	if r8.TotalSec >= r1.TotalSec {
		t.Fatal("more stores must not slow training down")
	}
}

// TestAPOBalancePointNearEight reproduces the Fig 11 anchor: for ResNet50 at
// 10 Gbps, Store- and Tuner-stages balance at ≈8 PipeStores.
func TestAPOBalancePointNearEight(t *testing.T) {
	best, bestDiff := 0, math.Inf(1)
	for n := 1; n <= 20; n++ {
		res, err := Estimate(baseConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		if res.TDiff < bestDiff {
			bestDiff, best = res.TDiff, n
		}
	}
	if best < 7 || best > 10 {
		t.Fatalf("balance point at %d stores, want ≈8", best)
	}
}

func TestTrainingTimeFlattensBeyondBalance(t *testing.T) {
	r8, _ := Estimate(baseConfig(8))
	r20, _ := Estimate(baseConfig(20))
	// Beyond the balance point the Tuner dominates; gains must be small.
	if r8.TotalSec/r20.TotalSec > 1.6 {
		t.Fatalf("training time should flatten: 8 stores %.1fs vs 20 stores %.1fs",
			r8.TotalSec, r20.TotalSec)
	}
	r2, _ := Estimate(baseConfig(2))
	if r2.TotalSec/r8.TotalSec < 2 {
		t.Fatalf("below the balance point scaling should be strong: 2 stores %.1fs vs 8 stores %.1fs",
			r2.TotalSec, r8.TotalSec)
	}
}

// TestFigNineShape: traffic falls monotonically toward the +Conv5 cut, then
// explodes at +FC from weight sync; training time is minimized at +Conv5.
func TestFigNineShape(t *testing.T) {
	m := model.ResNet50()
	cfg := baseConfig(4)
	cfg.Nrun = 3 // the evaluation's default pipeline depth (§6.3)
	var traffics []int64
	var times []float64
	for c := model.Cut(0); int(c) <= len(m.Stages); c++ {
		cfg.Cut = c
		res, err := Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traffics = append(traffics, res.FeatureTraffic+res.SyncTraffic)
		times = append(times, res.TotalSec)
	}
	conv5 := int(m.LastFrozen()) // index of the +Conv5 cut
	for c := 1; c <= conv5; c++ {
		if traffics[c] > traffics[c-1] {
			t.Fatalf("traffic should not rise before +Conv5: %v", traffics)
		}
	}
	fc := len(m.Stages)
	if traffics[fc] < 5*traffics[conv5] {
		t.Fatalf("+FC sync traffic must surge past +Conv5 feature traffic: %v", traffics)
	}
	bestCut := 0
	for c := range times {
		if times[c] < times[bestCut] {
			bestCut = c
		}
	}
	if bestCut != conv5 {
		t.Fatalf("shortest training at cut %s, want +Conv5 (times %v)",
			m.CutName(model.Cut(bestCut)), times)
	}
}

func TestPipelinedFasterThanUnpipelined(t *testing.T) {
	cfg := baseConfig(4)
	cfg.Nrun = 1
	r1, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nrun = 3
	r3, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	saved := 1 - r3.TotalSec/r1.TotalSec
	// Paper Fig 17: up to ≈32 % saved at Nrun=3; our calibration yields ≈20 %
	// (limit 1−S/(S+T) ≈ 33 % as Nrun→∞). Accept a broad band.
	if saved < 0.10 || saved > 0.40 {
		t.Fatalf("pipelining saved %.1f%%, want 10–40%%", saved*100)
	}
}

func TestSimulateMatchesEstimate(t *testing.T) {
	for _, nrun := range []int{1, 2, 3, 5} {
		cfg := baseConfig(6)
		cfg.Nrun = nrun
		est, err := Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.TotalSec-sim.TotalSec)/est.TotalSec > 0.02 {
			t.Fatalf("Nrun=%d: estimate %.2f vs simulate %.2f diverge", nrun, est.TotalSec, sim.TotalSec)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Estimate(Config{}); err == nil {
		t.Fatal("nil model must error")
	}
	c := baseConfig(0)
	if _, err := Estimate(c); err == nil {
		t.Fatal("zero stores must error")
	}
	c = baseConfig(2)
	c.Cut = model.Cut(99)
	if _, err := Estimate(c); err == nil {
		t.Fatal("invalid cut must error")
	}
	c = baseConfig(2)
	c.Images = 0
	if _, err := Estimate(c); err == nil {
		t.Fatal("zero images must error")
	}
}

func TestInterRunLossGap(t *testing.T) {
	// Larger runs → smaller gap; more weights → larger gap.
	small, err := InterRunLossGap(1_000_000, 10_000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	large, err := InterRunLossGap(1_000_000, 100_000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("gap should shrink with more samples: %v vs %v", large, small)
	}
	big, _ := InterRunLossGap(100_000_000, 10_000, 0.05)
	if big <= small {
		t.Fatal("gap should grow with more weights")
	}
	if _, err := InterRunLossGap(0, 1, 0.5); err == nil {
		t.Fatal("invalid inputs must error")
	}
	if _, err := InterRunLossGap(1, 1, 1.5); err == nil {
		t.Fatal("invalid confidence must error")
	}
}

func TestConvergenceIterationsBound(t *testing.T) {
	t2, err := ConvergenceIterations(0.01, 0.5, 3, 0.5, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= 0 {
		t.Fatalf("bound %d should be positive", t2)
	}
	// The loss bound after exactly T2 iterations must be ≤ target.
	if got := LossBoundAfter(0.01, 0.5, 3, 0.55, t2); got > 0.01+1e-9 {
		t.Fatalf("loss after T2 = %v > target", got)
	}
	// Tighter targets need more iterations.
	t3, _ := ConvergenceIterations(0.01, 0.5, 3, 0.5, 0.05, 0.001)
	if t3 <= t2 {
		t.Fatal("tighter target must need more iterations")
	}
	// Already converged → zero.
	z, _ := ConvergenceIterations(0.01, 0.5, 3, 0.001, 0, 0.01)
	if z != 0 {
		t.Fatalf("already-converged bound = %d, want 0", z)
	}
	if _, err := ConvergenceIterations(-1, 0.5, 3, 0.5, 0, 0.01); err == nil {
		t.Fatal("invalid η must error")
	}
}

// featureWorld builds a frozen-backbone feature dataset for real training.
func featureWorld(t *testing.T, seed int64) (train, test *dataset.Batch, classes int) {
	t.Helper()
	cfg := dataset.DefaultConfig(seed)
	cfg.InitialImages = 2400
	w := dataset.NewWorld(cfg)
	backbone := nn.NewFeatureExtractor(seed, cfg.InputDim, 64, 32)
	raw := w.SampleStored(2000)
	tb := w.FreshTestSet(600)
	train = &dataset.Batch{X: backbone.Forward(raw.X), Labels: raw.Labels}
	test = &dataset.Batch{X: backbone.Forward(tb.X), Labels: tb.Labels}
	return train, test, cfg.MaxClasses
}

func TestFineTuneRunsConvergesAndPipeliningCostsLittle(t *testing.T) {
	train, test, classes := featureWorld(t, 11)
	accFor := func(nrun int) float64 {
		rng := rand.New(rand.NewSource(7))
		clf := nn.NewMLP("clf", []int{train.X.Cols, 128, classes}, rng)
		opt := DefaultTrainOptions()
		stats, err := FineTuneRuns(clf, SplitRuns(train, nrun), opt)
		if err != nil {
			t.Fatal(err)
		}
		if stats.TotalEpochs == 0 {
			t.Fatal("no epochs ran")
		}
		acc, _ := nn.Accuracy(clf, test.X, test.Labels, 1)
		return acc
	}
	a1 := accFor(1)
	a3 := accFor(3)
	a8 := accFor(8)
	if a1 < 0.5 {
		t.Fatalf("unpipelined fine-tune should learn: acc %.3f", a1)
	}
	// Moderate pipelining must cost little accuracy (§6.3: ≤0.1 pt at
	// Nrun=3 in the paper; we allow a few points at this tiny scale).
	if a1-a3 > 0.06 {
		t.Fatalf("Nrun=3 lost too much accuracy: %.3f vs %.3f", a3, a1)
	}
	// Heavy splitting should hurt at least as much as moderate splitting
	// (catastrophic forgetting grows as runs shrink).
	if a8 > a3+0.02 {
		t.Fatalf("expected more forgetting at Nrun=8: %.3f vs %.3f", a8, a3)
	}
}

func TestSplitRuns(t *testing.T) {
	train, _, _ := featureWorld(t, 12)
	runs := SplitRuns(train, 3)
	if len(runs) != 3 {
		t.Fatalf("got %d runs", len(runs))
	}
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	if total != train.Len() {
		t.Fatalf("runs cover %d of %d samples", total, train.Len())
	}
	if len(SplitRuns(train, 1)) != 1 {
		t.Fatal("n=1 must be a single run")
	}
}

func TestFineTuneRunsValidation(t *testing.T) {
	if _, err := FineTuneRuns(nil, nil, DefaultTrainOptions()); err == nil {
		t.Fatal("no runs must error")
	}
}
