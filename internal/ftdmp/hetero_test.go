package ftdmp

import (
	"math"
	"testing"

	"ndpipe/internal/cluster"
	"ndpipe/internal/model"
)

func heteroCfg(fleet []*cluster.Server) HeteroConfig {
	m := model.ResNet50()
	return HeteroConfig{
		Base:  Config{Model: m, Cut: m.LastFrozen(), Images: 120_000, Nrun: 3},
		Fleet: fleet,
	}
}

func TestHeteroMatchesHomogeneous(t *testing.T) {
	// An all-T4 "heterogeneous" fleet must agree with the homogeneous path.
	fleet := []*cluster.Server{cluster.PipeStore(10), cluster.PipeStore(10), cluster.PipeStore(10), cluster.PipeStore(10)}
	het, err := EstimateHetero(heteroCfg(fleet))
	if err != nil {
		t.Fatal(err)
	}
	homo, err := Estimate(Config{Model: model.ResNet50(), Cut: model.ResNet50().LastFrozen(), Images: 120_000, Nrun: 3, Stores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(het.TotalSec-homo.TotalSec)/homo.TotalSec > 0.01 {
		t.Fatalf("hetero %v vs homo %v", het.TotalSec, homo.TotalSec)
	}
}

func TestHeteroShardsProportionalToSpeed(t *testing.T) {
	fleet := []*cluster.Server{cluster.PipeStore(10), cluster.PipeStoreInf1(10)}
	res, err := EstimateHetero(heteroCfg(fleet))
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardImages[0]+res.ShardImages[1] != 120_000 {
		t.Fatalf("shards %v do not cover the dataset", res.ShardImages)
	}
	// The T4 is ≈2.3× the NeuronCore, so it should get ≈2.3× the photos.
	ratio := float64(res.ShardImages[0]) / float64(res.ShardImages[1])
	speed := res.PerImageSec[1] / res.PerImageSec[0]
	if math.Abs(ratio-speed)/speed > 0.02 {
		t.Fatalf("shard ratio %.2f vs speed ratio %.2f", ratio, speed)
	}
	if ratio < 1.5 {
		t.Fatalf("T4 should carry more photos: %v", res.ShardImages)
	}
}

func TestHeteroBeatsNaiveEqualSharding(t *testing.T) {
	// Proportional sharding must beat what equal shards would cost: with
	// equal shards the slow store is the straggler.
	fleet := []*cluster.Server{cluster.PipeStore(10), cluster.PipeStoreInf1(10)}
	res, err := EstimateHetero(heteroCfg(fleet))
	if err != nil {
		t.Fatal(err)
	}
	equalStage := float64(60_000) / 3 * res.PerImageSec[1] // slow store, half the data
	if res.StoreStageSec >= equalStage {
		t.Fatalf("proportional stage %v should beat equal-shard straggler %v",
			res.StoreStageSec, equalStage)
	}
}

func TestHeteroAddingStoreHelps(t *testing.T) {
	small := []*cluster.Server{cluster.PipeStore(10), cluster.PipeStore(10)}
	big := append(append([]*cluster.Server{}, small...), cluster.PipeStoreInf1(10))
	a, err := EstimateHetero(heteroCfg(small))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateHetero(heteroCfg(big))
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalSec >= a.TotalSec {
		t.Fatalf("adding an Inferentia store should help: %v vs %v", b.TotalSec, a.TotalSec)
	}
}

func TestSimulateHeteroMatchesEstimate(t *testing.T) {
	fleet := []*cluster.Server{
		cluster.PipeStore(10), cluster.PipeStore(10), cluster.PipeStoreInf1(10),
	}
	est, err := EstimateHetero(heteroCfg(fleet))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateHetero(heteroCfg(fleet))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.TotalSec-sim.TotalSec)/est.TotalSec > 0.03 {
		t.Fatalf("estimate %v vs simulate %v", est.TotalSec, sim.TotalSec)
	}
}

func TestHeteroValidation(t *testing.T) {
	if _, err := EstimateHetero(HeteroConfig{Base: Config{Model: model.ResNet50(), Images: 10}}); err == nil {
		t.Fatal("empty fleet must error")
	}
	cfg := heteroCfg([]*cluster.Server{cluster.PipeStore(10)})
	cfg.Base.Model = nil
	if _, err := EstimateHetero(cfg); err == nil {
		t.Fatal("nil model must error")
	}
}
