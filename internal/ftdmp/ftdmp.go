// Package ftdmp implements Fine-Tuning-based Data and Model Parallelism
// (§5.1–§5.2), the paper's core training strategy: the weight-freeze part of
// a DNN is replicated across N PipeStores (data parallelism, no weight
// synchronization), the trainable tail lives on the single Tuner (model
// parallelism), and training is pipelined over Nrun sub-dataset runs so the
// Store-stage of run r+1 overlaps the Tuner-stage of run r (Fig 10).
//
// The package offers three views of FT-DMP:
//
//   - Estimate: a closed-form performance model (used by APO's
//     FindBestPoint) for any partition cut, store count and pipeline depth;
//   - Simulate: a run-granularity discrete-event execution on the sim
//     engine, which is what the figures are generated from;
//   - FineTuneRuns (train.go): real gradient-descent training of the
//     classifier over pipelined runs, for the accuracy experiments.
package ftdmp

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/delta"
	"ndpipe/internal/model"
	"ndpipe/internal/npe"
	"ndpipe/internal/sim"
)

// Weight-synchronization realism constants: all-reduce of layer-sized
// tensors across cloud VMs reaches ≈10 % of line rate and pays a barrier
// per iteration (calibrated against the Fig 6a weight-sync blow-up).
const (
	SyncGoodputFrac = 0.10
	SyncBarrierS    = 0.010
)

// Config describes one FT-DMP training job.
type Config struct {
	Model  *model.Spec
	Cut    model.Cut // partition point; model.LastFrozen() is the FT-DMP default
	Stores int       // number of PipeStores
	Nrun   int       // pipeline depth (1 = unpipelined, Fig 10a)
	Images int       // training-set size
	// BatchPerStore is the PipeStore feature-extraction batch (paper: 512
	// for training); it also sets the weight-sync granularity for cuts that
	// offload trainable layers.
	BatchPerStore int
	// TunerEpochs is how many passes the Tuner makes over each run's
	// gathered features (paper setups converge within one).
	TunerEpochs int
	// Gbps is the network line rate between every PipeStore and the Tuner.
	Gbps float64

	Store *cluster.Server // PipeStore hardware (nil → cluster.PipeStore(Gbps))
	Tuner *cluster.Server // Tuner hardware (nil → cluster.Tuner(Gbps))
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Model == nil {
		return c, fmt.Errorf("ftdmp: nil model")
	}
	if !c.Model.Valid(c.Cut) {
		return c, fmt.Errorf("ftdmp: invalid cut %d for %s", c.Cut, c.Model.Name)
	}
	if c.Stores <= 0 {
		return c, fmt.Errorf("ftdmp: need at least one store")
	}
	if c.Images <= 0 {
		return c, fmt.Errorf("ftdmp: no images")
	}
	if c.Nrun <= 0 {
		c.Nrun = 1
	}
	if c.BatchPerStore <= 0 {
		c.BatchPerStore = 512
	}
	if c.TunerEpochs <= 0 {
		c.TunerEpochs = 1
	}
	if c.Gbps <= 0 {
		c.Gbps = 10
	}
	if c.Store == nil {
		c.Store = cluster.PipeStore(c.Gbps)
	}
	if c.Tuner == nil {
		c.Tuner = cluster.Tuner(c.Gbps)
	}
	return c, nil
}

// Result reports a training job's performance.
type Result struct {
	TotalSec      float64 // wall time of the whole pipelined job
	StoreStageSec float64 // per-run Store-stage wall time
	TunerStageSec float64 // per-run Tuner-stage wall time
	TDiff         float64 // |StoreStageSec − TunerStageSec| (APO's objective)

	FeatureTraffic int64 // bytes of intermediate data shipped to the Tuner
	SyncTraffic    int64 // bytes of cross-store weight synchronization
	DistTraffic    int64 // bytes of model (delta) redistribution afterwards

	StorePerImageSec float64
	TunerPerImageSec float64

	// Busy seconds over the whole job, for energy metering.
	StoreGPUBusy  float64 // per store
	StoreCPUBusy  float64 // per store
	StoreDiskBusy float64 // per store
	TunerGPUBusy  float64
	TunerCPUBusy  float64
}

// IPS returns end-to-end training throughput in images/second.
func (r Result) IPS(images int) float64 { return float64(images) / r.TotalSec }

// storePerImage computes the Store-stage per-image wall time on one store,
// including its NPE pipeline, its share of the Tuner ingress link, and any
// weight-synchronization stalls.
func storePerImage(c Config) (sec float64, npeStages npe.Stages, err error) {
	opt := npe.Optimized()
	// Clamp the training batch to what the store's accelerator memory
	// allows (large models like ViT cannot hold the paper's 512 default).
	batch, err := npe.MaxBatch(c.Store, c.Model, c.BatchPerStore)
	if err != nil {
		return 0, npe.Stages{}, err
	}
	opt.BatchSize = batch
	gf := c.Model.StoreGFLOPs(c.Cut)
	if gf == 0 {
		// Nothing offloaded: the store just reads and ships raw
		// preprocessed binaries.
		in := npe.InputBytes(c.Model, npe.FineTune, opt)
		npeStages = npe.Stages{
			Read:   float64(in) / c.Store.Disk.ReadBps,
			Decomp: float64(c.Model.PreprocBytes()) / (c.Store.CPU.DecompBps * 2),
		}
	} else {
		npeStages, err = npe.StageTimes(c.Store, c.Model, gf, npe.FineTune, opt)
		if err != nil {
			return 0, npe.Stages{}, err
		}
	}
	tx := c.Model.CutOutputBytes(c.Cut)
	storeLink := float64(tx) / c.Store.Net.Bps
	tunerLink := float64(tx) * float64(c.Stores) / c.Tuner.Net.Bps

	sec = maxf(npeStages.Read, npeStages.Decomp, npeStages.FE, storeLink, tunerLink)

	// Weight synchronization (only when trainable layers were offloaded):
	// every iteration each store pushes gradients and pulls weights through
	// the Tuner's link, serializing across stores (§4.1's new bottleneck).
	// Distributed all-reduce over VM networks attains only a fraction of
	// line rate on these small tensors and pays a per-iteration barrier,
	// which is what makes naive NDP sync so punishing in Fig 6(a).
	if sb := c.Model.SyncedParamBytes(c.Cut); sb > 0 {
		perIter := 2*float64(sb)*float64(c.Stores)/(c.Tuner.Net.Bps*SyncGoodputFrac) + SyncBarrierS
		sec += perIter / float64(c.BatchPerStore)
	}
	return sec, npeStages, nil
}

// tunerPerImage computes the Tuner-stage per-image time: ingesting one
// image's intermediate data (CPU feed path), running the remaining frozen
// stages on the optimized engine, and training the trainable tail
// (forward+backward+update ≈ 3× its forward FLOPs) on the training engine.
func tunerPerImage(c Config) float64 {
	tx := c.Model.CutOutputBytes(c.Cut)
	feed := float64(tx) / c.Tuner.CPU.FeedBps
	scratch := float64(tx)/c.Tuner.Disk.WriteBps + float64(tx)/c.Tuner.Disk.ReadBps

	frozenOnTuner := c.Model.TunerGFLOPs(c.Cut) - c.Model.TrainableGFLOPs()
	if frozenOnTuner < 0 {
		frozenOnTuner = 0
	}
	var gpu float64
	if frozenOnTuner > 0 {
		gpu += 1 / c.Tuner.InferIPS(c.Model, frozenOnTuner)
	}
	// The trainable tail is trained wherever it lives; when it is offloaded
	// (+FC cuts) the Tuner only aggregates, so its GPU cost drops out.
	if c.Model.SyncedParamBytes(c.Cut) == 0 {
		gpu += 1 / c.Tuner.TrainIPS(c.Model, 3*c.Model.TrainableGFLOPs())
	}
	return feed + scratch + gpu
}

// Estimate evaluates the closed-form FT-DMP performance model.
func Estimate(cfg Config) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	sImg, stages, err := storePerImage(c)
	if err != nil {
		return Result{}, err
	}
	tImg := tunerPerImage(c)

	imagesPerRun := float64(c.Images) / float64(c.Nrun)
	S := imagesPerRun / float64(c.Stores) * sImg
	T := imagesPerRun * tImg * float64(c.TunerEpochs)

	// Two-stage pipeline over Nrun runs (Fig 10b): fill with the first
	// Store-stage, drain with the last Tuner-stage, bottleneck in between.
	total := S + float64(c.Nrun-1)*maxf(S, T) + T

	res := Result{
		StoreStageSec:    S,
		TunerStageSec:    T,
		TDiff:            absf(S - T),
		TotalSec:         total,
		StorePerImageSec: sImg,
		TunerPerImageSec: tImg,
	}
	res.FeatureTraffic = int64(c.Images) * c.Model.CutOutputBytes(c.Cut)
	if sb := c.Model.SyncedParamBytes(c.Cut); sb > 0 {
		iters := c.Images / (c.BatchPerStore * c.Stores)
		if iters < 1 {
			iters = 1
		}
		res.SyncTraffic = int64(iters) * 2 * sb * int64(c.Stores)
	}
	res.DistTraffic = int64(c.Stores) * delta.DistributionBytes(c.Model)

	perStoreImages := float64(c.Images) / float64(c.Stores)
	res.StoreGPUBusy = perStoreImages * stages.FE
	res.StoreCPUBusy = perStoreImages * stages.Decomp
	res.StoreDiskBusy = perStoreImages * stages.Read
	res.TunerGPUBusy = float64(c.Images) * (tImg - float64(c.Model.CutOutputBytes(c.Cut))/c.Tuner.CPU.FeedBps) * float64(c.TunerEpochs)
	res.TunerCPUBusy = float64(c.Images) * float64(c.Model.CutOutputBytes(c.Cut)) / c.Tuner.CPU.FeedBps
	return res, nil
}

// Simulate executes the pipelined job on the discrete-event engine at run
// granularity: one process per PipeStore per run plus a Tuner process,
// synchronizing through queues exactly as Fig 10 draws it. It captures
// effects the closed form approximates (uneven last run, stage overlap).
func Simulate(cfg Config) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	sImg, stages, err := storePerImage(c)
	if err != nil {
		return Result{}, err
	}
	tImg := tunerPerImage(c)

	eng := sim.New()
	runDone := eng.NewQueue("run-done", 0)

	// Store processes: all N stores work run r in parallel; the slowest
	// signals run completion.
	perRun := make([]int, c.Nrun)
	base, rem := c.Images/c.Nrun, c.Images%c.Nrun
	for r := range perRun {
		perRun[r] = base
		if r < rem {
			perRun[r]++
		}
	}
	for s := 0; s < c.Stores; s++ {
		s := s
		eng.Go(fmt.Sprintf("store-%d", s), func(p *sim.Proc) {
			for r := 0; r < c.Nrun; r++ {
				shard := perRun[r] / c.Stores
				if s < perRun[r]%c.Stores {
					shard++
				}
				p.Wait(float64(shard) * sImg)
				runDone.Put(p, r)
			}
		})
	}
	var total float64
	var tunerBusy float64
	eng.Go("tuner", func(p *sim.Proc) {
		for r := 0; r < c.Nrun; r++ {
			for s := 0; s < c.Stores; s++ {
				runDone.Get(p) // gather: wait for every store to finish run r
			}
			d := float64(perRun[r]) * tImg * float64(c.TunerEpochs)
			tunerBusy += d
			p.Wait(d)
		}
		total = eng.Now()
	})
	if _, err := eng.Run(); err != nil {
		return Result{}, err
	}

	res, err := Estimate(c)
	if err != nil {
		return Result{}, err
	}
	res.TotalSec = total
	_ = stages
	_ = tunerBusy
	return res, nil
}

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
