package ftdmp

import (
	"fmt"

	"ndpipe/internal/cluster"
	"ndpipe/internal/sim"
)

// HeteroConfig describes an FT-DMP job over a *mixed* PipeStore fleet —
// e.g. T4 stores bought last year plus cheaper Inferentia stores added
// later. The paper evaluates homogeneous fleets; this extension answers the
// deployment question operators actually face.
type HeteroConfig struct {
	Base Config // Model, Cut, Nrun, Images, batch, Gbps, Tuner (Stores/Store ignored)
	// Fleet lists each store's hardware (one entry per PipeStore).
	Fleet []*cluster.Server
}

// HeteroResult extends Result with per-store shard assignments.
type HeteroResult struct {
	Result
	// ShardImages[i] is the number of images assigned to Fleet[i].
	ShardImages []int
	// PerImageSec[i] is Fleet[i]'s per-image Store-stage time.
	PerImageSec []float64
}

// EstimateHetero sizes shards proportionally to each store's speed (so all
// stores finish a run together — the heterogeneous analogue of APO's
// balance objective) and evaluates the pipelined job.
func EstimateHetero(cfg HeteroConfig) (HeteroResult, error) {
	if len(cfg.Fleet) == 0 {
		return HeteroResult{}, fmt.Errorf("ftdmp: empty fleet")
	}
	base := cfg.Base
	base.Stores = len(cfg.Fleet)
	c, err := base.withDefaults()
	if err != nil {
		return HeteroResult{}, err
	}

	// Per-store rates.
	per := make([]float64, len(cfg.Fleet))
	rates := make([]float64, len(cfg.Fleet))
	var totalRate float64
	for i, hw := range cfg.Fleet {
		sc := c
		sc.Store = hw
		sec, _, err := storePerImage(sc)
		if err != nil {
			return HeteroResult{}, fmt.Errorf("ftdmp: fleet[%d] (%s): %w", i, hw.Name, err)
		}
		per[i] = sec
		rates[i] = 1 / sec
		totalRate += rates[i]
	}

	// Speed-proportional sharding (largest-remainder rounding).
	shards := make([]int, len(cfg.Fleet))
	assigned := 0
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, len(cfg.Fleet))
	for i, r := range rates {
		exact := float64(c.Images) * r / totalRate
		shards[i] = int(exact)
		assigned += shards[i]
		fracs[i] = frac{i: i, f: exact - float64(shards[i])}
	}
	for assigned < c.Images {
		best := 0
		for j := 1; j < len(fracs); j++ {
			if fracs[j].f > fracs[best].f {
				best = j
			}
		}
		shards[fracs[best].i]++
		fracs[best].f = -1
		assigned++
	}

	// Store-stage per run = the slowest store's shard time; with
	// proportional shards this is ≈Images/(Nrun·Σrates).
	var stage float64
	for i, n := range shards {
		if t := float64(n) / float64(c.Nrun) * per[i]; t > stage {
			stage = t
		}
	}
	tImg := tunerPerImage(c)
	imagesPerRun := float64(c.Images) / float64(c.Nrun)
	T := imagesPerRun * tImg * float64(c.TunerEpochs)
	total := stage + float64(c.Nrun-1)*maxf(stage, T) + T

	res := HeteroResult{
		Result: Result{
			StoreStageSec:    stage,
			TunerStageSec:    T,
			TDiff:            absf(stage - T),
			TotalSec:         total,
			TunerPerImageSec: tImg,
		},
		ShardImages: shards,
		PerImageSec: per,
	}
	res.FeatureTraffic = int64(c.Images) * c.Model.CutOutputBytes(c.Cut)
	return res, nil
}

// SimulateHetero runs the mixed fleet on the discrete-event engine: every
// store processes its shard per run, the Tuner gathers and trains —
// capturing straggler effects exactly.
func SimulateHetero(cfg HeteroConfig) (HeteroResult, error) {
	est, err := EstimateHetero(cfg)
	if err != nil {
		return HeteroResult{}, err
	}
	base := cfg.Base
	base.Stores = len(cfg.Fleet)
	c, err := base.withDefaults()
	if err != nil {
		return HeteroResult{}, err
	}

	eng := sim.New()
	runDone := eng.NewQueue("run-done", 0)
	for i := range cfg.Fleet {
		i := i
		eng.Go(fmt.Sprintf("store-%d", i), func(p *sim.Proc) {
			perRun := est.ShardImages[i] / c.Nrun
			for r := 0; r < c.Nrun; r++ {
				n := perRun
				if r == c.Nrun-1 {
					n = est.ShardImages[i] - perRun*(c.Nrun-1)
				}
				p.Wait(float64(n) * est.PerImageSec[i])
				runDone.Put(p, r)
			}
		})
	}
	var total float64
	eng.Go("tuner", func(p *sim.Proc) {
		perRun := c.Images / c.Nrun
		for r := 0; r < c.Nrun; r++ {
			for range cfg.Fleet {
				runDone.Get(p)
			}
			n := perRun
			if r == c.Nrun-1 {
				n = c.Images - perRun*(c.Nrun-1)
			}
			p.Wait(float64(n) * est.TunerPerImageSec * float64(c.TunerEpochs))
		}
		total = eng.Now()
	})
	if _, err := eng.Run(); err != nil {
		return HeteroResult{}, err
	}
	est.TotalSec = total
	return est, nil
}
