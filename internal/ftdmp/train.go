package ftdmp

import (
	"fmt"
	"math/rand"

	"ndpipe/internal/dataset"
	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

// TrainOptions controls the real (gradient-descent) pipelined fine-tune.
type TrainOptions struct {
	LR            float64
	Momentum      float64
	MiniBatch     int
	MaxEpochs     int     // per run
	ConvergeDelta float64 // stop when train-accuracy gains fall below this...
	Patience      int     // ...for this many consecutive epochs (paper: 0.01 %, 3 epochs)
	Seed          int64
}

// DefaultTrainOptions mirrors the paper's stopping criterion (§6.3).
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		LR:            0.1,
		Momentum:      0.9,
		MiniBatch:     128,
		MaxEpochs:     60,
		ConvergeDelta: 0.0001,
		Patience:      3,
		Seed:          1,
	}
}

// TrainStats reports what the real trainer did.
type TrainStats struct {
	EpochsPerRun []int
	TotalEpochs  int
	FinalLoss    float64
}

// FineTuneRuns is the Tuner's view of pipelined FT-DMP training: the feature
// dataset is split into len(runs) sub-datasets and the classifier is trained
// to convergence on each run in order. With one run this is vanilla FT-DMP;
// with more runs it is the pipelined variant whose convergence Theorem 5.1
// guarantees — and whose catastrophic-forgetting risk grows as runs shrink
// (Fig 17). The classifier clf is mutated in place.
func FineTuneRuns(clf *nn.Network, runs []*dataset.Batch, opt TrainOptions) (TrainStats, error) {
	if len(runs) == 0 {
		return TrainStats{}, fmt.Errorf("ftdmp: no runs")
	}
	if opt.MiniBatch <= 0 {
		return TrainStats{}, fmt.Errorf("ftdmp: minibatch must be positive")
	}
	if opt.MaxEpochs <= 0 {
		opt.MaxEpochs = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sgd := nn.NewSGD(opt.LR, opt.Momentum)
	stats := TrainStats{EpochsPerRun: make([]int, len(runs))}
	for r, run := range runs {
		if run.Len() == 0 {
			return TrainStats{}, fmt.Errorf("ftdmp: run %d is empty", r)
		}
		best := -1.0
		stale := 0
		for epoch := 0; epoch < opt.MaxEpochs; epoch++ {
			stats.FinalLoss = trainEpoch(clf, sgd, run, opt.MiniBatch, rng)
			stats.EpochsPerRun[r]++
			stats.TotalEpochs++
			acc, _ := nn.Accuracy(clf, run.X, run.Labels, 1)
			if acc > best+opt.ConvergeDelta {
				best = acc
				stale = 0
			} else {
				stale++
				if opt.Patience > 0 && stale >= opt.Patience {
					break
				}
			}
		}
	}
	return stats, nil
}

// trainEpoch runs one shuffled pass of minibatch SGD and returns the mean
// loss over the epoch. The minibatch matrix comes from the tensor scratch
// arena, so a whole epoch gathers rows into one recycled buffer instead of
// materializing a fresh batch per step.
func trainEpoch(clf *nn.Network, sgd *nn.SGD, b *dataset.Batch, mini int, rng *rand.Rand) float64 {
	n := b.Len()
	perm := rng.Perm(n)
	var lossSum float64
	var batches int
	x := tensor.Get(min(mini, n), b.X.Cols)
	defer tensor.Put(x)
	labels := make([]int, 0, mini)
	for lo := 0; lo < n; lo += mini {
		hi := lo + mini
		if hi > n {
			hi = n
		}
		idx := perm[lo:hi]
		x = tensor.Reuse(x, len(idx), b.X.Cols)
		labels = labels[:0]
		for i, k := range idx {
			copy(x.Row(i), b.X.Row(k))
			labels = append(labels, b.Labels[k])
		}
		loss := nn.TrainBatch(clf, sgd, x, labels)
		lossSum += loss
		batches++
	}
	return lossSum / float64(batches)
}

// SplitRuns partitions a feature batch into n contiguous runs of
// near-equal size (the sub-datasets of Fig 10).
func SplitRuns(b *dataset.Batch, n int) []*dataset.Batch {
	if n <= 1 {
		return []*dataset.Batch{b}
	}
	runs := make([]*dataset.Batch, 0, n)
	size := b.Len() / n
	for r := 0; r < n; r++ {
		lo := r * size
		hi := lo + size
		if r == n-1 {
			hi = b.Len()
		}
		runs = append(runs, b.Slice(lo, hi))
	}
	return runs
}
