package ftdmp

import (
	"testing"
	"testing/quick"

	"ndpipe/internal/model"
)

// Property: more PipeStores never slow training down, and more images never
// speed it up, for any model and any valid cut.
func TestEstimateMonotonicityProperty(t *testing.T) {
	zoo := model.Zoo()
	f := func(modelIdx, cutRaw, storesRaw uint8) bool {
		m := zoo[int(modelIdx)%len(zoo)]
		cut := model.Cut(int(cutRaw) % (int(m.LastFrozen()) + 1))
		stores := 1 + int(storesRaw)%19
		base := Config{Model: m, Cut: cut, Stores: stores, Images: 200_000}
		r1, err := Estimate(base)
		if err != nil {
			return false
		}
		more := base
		more.Stores = stores + 1
		r2, err := Estimate(more)
		if err != nil {
			return false
		}
		if r2.TotalSec > r1.TotalSec+1e-9 {
			return false // more stores slowed us down
		}
		big := base
		big.Images = 400_000
		r3, err := Estimate(big)
		if err != nil {
			return false
		}
		return r3.TotalSec >= r1.TotalSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: feature traffic is exactly linear in the image count and
// independent of the store count.
func TestFeatureTrafficLinearityProperty(t *testing.T) {
	f := func(storesRaw uint8) bool {
		m := model.ResNet50()
		stores := 1 + int(storesRaw)%19
		a, err := Estimate(Config{Model: m, Cut: m.LastFrozen(), Stores: stores, Images: 100_000})
		if err != nil {
			return false
		}
		b, err := Estimate(Config{Model: m, Cut: m.LastFrozen(), Stores: stores, Images: 300_000})
		if err != nil {
			return false
		}
		return b.FeatureTraffic == 3*a.FeatureTraffic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: pipelining never hurts — for any Nrun, total time is at most
// the unpipelined total (plus numerical slack), and at least the larger of
// the two stage totals (you cannot beat the bottleneck).
func TestPipelineBoundsProperty(t *testing.T) {
	f := func(nrunRaw, storesRaw uint8) bool {
		m := model.ResNet50()
		nrun := 1 + int(nrunRaw)%11
		stores := 1 + int(storesRaw)%15
		base := Config{Model: m, Cut: m.LastFrozen(), Stores: stores, Images: 240_000}
		serial, err := Estimate(base)
		if err != nil {
			return false
		}
		piped := base
		piped.Nrun = nrun
		r, err := Estimate(piped)
		if err != nil {
			return false
		}
		if r.TotalSec > serial.TotalSec+1e-6 {
			return false
		}
		// Lower bound: the full store-stage and tuner-stage work each have
		// to happen somewhere.
		storeTotal := serial.StoreStageSec
		tunerTotal := serial.TunerStageSec
		floor := storeTotal
		if tunerTotal > floor {
			floor = tunerTotal
		}
		return r.TotalSec >= floor-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: bandwidth only helps. Training time is non-increasing in the
// network line rate for any cut (sync-heavy cuts benefit most).
func TestBandwidthMonotonicityProperty(t *testing.T) {
	m := model.ResNet50()
	f := func(cutRaw uint8) bool {
		cut := model.Cut(int(cutRaw) % m.NumCuts())
		var prev float64 = -1
		for _, g := range []float64{1, 10, 40} {
			r, err := Estimate(Config{Model: m, Cut: cut, Stores: 4, Images: 120_000, Gbps: g})
			if err != nil {
				return false
			}
			if prev >= 0 && r.TotalSec > prev+1e-9 {
				return false
			}
			prev = r.TotalSec
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}
