package pipestore

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"
)

// DialOptions configures DialRetry: how hard a store tries to (re)connect
// to its Tuner and whether it rejoins after a session ends. The zero value
// means "a few attempts, no rejoin".
type DialOptions struct {
	// Attempts is the number of connection attempts per session (default 5).
	Attempts int
	// Backoff is the base delay between attempts, doubled per attempt up to
	// BackoffCap with uniform jitter in [0.5×, 1.5×).
	Backoff    time.Duration // default 100ms
	BackoffCap time.Duration // default 5s
	// Rejoin keeps the store in service across sessions: after Serve
	// returns — the Tuner evicted us, restarted, or crashed — dial again,
	// re-register via the Hello/catch-up path, and carry on. Without it a
	// session end is final.
	Rejoin bool
	// MaxSessions caps how many sessions a rejoining store will serve
	// (0 = unlimited); tests use it to bound the loop.
	MaxSessions int
	// Dial is the connection factory (default: net.Dial "tcp" to the
	// address given to DialRetry). Tests inject faultinject wrappers here.
	Dial func() (net.Conn, error)
	// Seed fixes the backoff jitter (0 = entropy).
	Seed int64
}

func (o DialOptions) withDefaults(addr string) DialOptions {
	if o.Attempts <= 0 {
		o.Attempts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.BackoffCap < o.Backoff {
		o.BackoffCap = 5 * time.Second
	}
	if o.Dial == nil {
		o.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// DialRetry connects to the Tuner with retries and capped, jittered
// exponential backoff, then serves the session. It is the store half of
// the rejoin protocol: with Rejoin set, a store that is evicted mid-round,
// or whose Tuner restarts, keeps redialing and re-registering — each new
// session replays the Hello handshake, so the Tuner's AddStore catch-up
// path brings the classifier back to the current version before the store
// re-enters the fleet.
//
// It returns nil after a cleanly closed session (without Rejoin) or the
// MaxSessions'th session (with it); otherwise it returns the first
// session or dial error that ends the loop.
func (n *Node) DialRetry(addr string, o DialOptions) error {
	o = o.withDefaults(addr)
	seed := o.Seed
	if seed == 0 {
		seed = rand.Int63()
		if seed == 0 {
			seed = 1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	sessions := 0
	for {
		conn, err := dialBackoff(n, o, rng)
		if err != nil {
			return err
		}
		sessions++
		err = n.Serve(conn)
		if err != nil {
			n.log.Warn("session ended", slog.Int("session", sessions), slog.Any("err", err))
		} else {
			n.log.Info("session closed by tuner", slog.Int("session", sessions))
		}
		if !o.Rejoin {
			return err
		}
		if o.MaxSessions > 0 && sessions >= o.MaxSessions {
			return err
		}
	}
}

// dialBackoff makes one session's worth of connection attempts.
func dialBackoff(n *Node, o DialOptions, rng *rand.Rand) (net.Conn, error) {
	var err error
	for a := 0; a < o.Attempts; a++ {
		if a > 0 {
			d := o.Backoff
			for i := 1; i < a; i++ {
				d *= 2
				if d >= o.BackoffCap {
					d = o.BackoffCap
					break
				}
			}
			time.Sleep(d/2 + time.Duration(rng.Float64()*float64(d)))
		}
		var conn net.Conn
		if conn, err = o.Dial(); err == nil {
			return conn, nil
		}
		n.log.Debug("dial failed", slog.Int("attempt", a+1), slog.Any("err", err))
	}
	return nil, fmt.Errorf("pipestore %s: dial failed after %d attempts: %w", n.ID, o.Attempts, err)
}
