package pipestore

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"
)

// DialOptions configures DialRetry: how hard a store tries to (re)connect
// to its Tuner and whether it rejoins after a session ends. The zero value
// means "a few attempts, no rejoin".
type DialOptions struct {
	// Attempts is the number of connection attempts per session (default 5).
	Attempts int
	// Backoff is the base delay between attempts, doubled per attempt up to
	// BackoffCap with uniform jitter in [0.5×, 1.5×). The ladder position
	// persists across sessions — every failed dial and every short-lived
	// session escalates it, so a crash-looping tuner is not hammered at the
	// base rate — and resets once a session has stayed healthy for
	// HealthyAfter, so a store that flaps hours apart starts back at the
	// base delay instead of paying the accumulated maximum.
	Backoff    time.Duration // default 100ms
	BackoffCap time.Duration // default 5s
	// HealthyAfter is the session duration after which the backoff ladder
	// resets (default 30s; negative disables the reset).
	HealthyAfter time.Duration
	// Rejoin keeps the store in service across sessions: after Serve
	// returns — the Tuner evicted us, restarted, or crashed — dial again,
	// re-register via the Hello/catch-up path, and carry on. Without it a
	// session end is final.
	Rejoin bool
	// MaxSessions caps how many sessions a rejoining store will serve
	// (0 = unlimited); tests use it to bound the loop.
	MaxSessions int
	// Dial is the connection factory (default: net.Dial "tcp" to the
	// address being tried). Tests inject faultinject wrappers here. It
	// takes precedence over DialAddr when both are set.
	Dial func() (net.Conn, error)
	// DialAddr is the address-aware connection factory used for
	// multi-address failover (DialRetryMulti); it receives the address of
	// the current attempt.
	DialAddr func(addr string) (net.Conn, error)
	// Seed fixes the backoff jitter (0 = entropy).
	Seed int64
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Attempts <= 0 {
		o.Attempts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.BackoffCap < o.Backoff {
		o.BackoffCap = 5 * time.Second
	}
	if o.HealthyAfter == 0 {
		o.HealthyAfter = 30 * time.Second
	}
	if o.DialAddr == nil {
		o.DialAddr = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.Dial != nil {
		o.DialAddr = func(string) (net.Conn, error) { return o.Dial() }
	}
	return o
}

// DialRetry connects to the Tuner with retries and capped, jittered
// exponential backoff, then serves the session. It is the store half of
// the rejoin protocol: with Rejoin set, a store that is evicted mid-round,
// or whose Tuner restarts, keeps redialing and re-registering — each new
// session replays the Hello handshake, so the Tuner's AddStore catch-up
// path brings the classifier back to the current version before the store
// re-enters the fleet.
//
// It returns nil after a cleanly closed session (without Rejoin) or the
// MaxSessions'th session (with it); otherwise it returns the first
// session or dial error that ends the loop.
func (n *Node) DialRetry(addr string, o DialOptions) error {
	return n.DialRetryMulti([]string{addr}, o)
}

// DialRetryMulti is DialRetry with tuner failover: addresses are tried in
// order within each dial pass (list the current leader first, standby
// candidates after), advancing to the next candidate on every failed
// attempt. Combined with Rejoin, a store survives a leader failover
// end-to-end: the dead leader's address fails fast, the standby's address
// connects, and the versioned Hello brings the store current on the new
// leader with a minimal catch-up.
func (n *Node) DialRetryMulti(addrs []string, o DialOptions) error {
	if len(addrs) == 0 {
		return fmt.Errorf("pipestore %s: no tuner addresses", n.ID)
	}
	o = o.withDefaults()
	seed := o.Seed
	if seed == 0 {
		seed = rand.Int63()
		if seed == 0 {
			seed = 1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	sessions := 0
	ladder := 0 // consecutive failed attempts since the last healthy session
	for {
		conn, err := dialBackoff(n, addrs, o, rng, &ladder)
		if err != nil {
			return err
		}
		sessions++
		start := time.Now()
		err = n.Serve(conn)
		if o.HealthyAfter >= 0 && time.Since(start) >= o.HealthyAfter {
			// The connection stayed healthy long enough: this flap is fresh,
			// not part of an ongoing outage. Start the ladder over.
			ladder = 0
		} else {
			// A short-lived session is as bad as a failed dial: escalate, so
			// a crash-looping tuner is not hammered at the base rate.
			ladder++
		}
		if err != nil {
			n.log.Warn("session ended", slog.Int("session", sessions), slog.Any("err", err))
		} else {
			n.log.Info("session closed by tuner", slog.Int("session", sessions))
		}
		if !o.Rejoin {
			return err
		}
		if o.MaxSessions > 0 && sessions >= o.MaxSessions {
			return err
		}
	}
}

// dialBackoff makes one session's worth of connection attempts, rotating
// through the candidate addresses. The ladder position is shared across
// sessions (see DialOptions.Backoff); each failed attempt escalates it.
func dialBackoff(n *Node, addrs []string, o DialOptions, rng *rand.Rand, ladder *int) (net.Conn, error) {
	var err error
	for a := 0; a < o.Attempts; a++ {
		if *ladder > 0 {
			d := o.Backoff
			for i := 1; i < *ladder; i++ {
				d *= 2
				if d >= o.BackoffCap {
					d = o.BackoffCap
					break
				}
			}
			time.Sleep(d/2 + time.Duration(rng.Float64()*float64(d)))
		}
		addr := addrs[a%len(addrs)]
		var conn net.Conn
		if conn, err = o.DialAddr(addr); err == nil {
			return conn, nil
		}
		*ladder++
		n.log.Debug("dial failed", slog.String("addr", addr),
			slog.Int("attempt", a+1), slog.Int("ladder", *ladder), slog.Any("err", err))
	}
	return nil, fmt.Errorf("pipestore %s: dial failed after %d attempts: %w", n.ID, o.Attempts, err)
}
