package pipestore

import (
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/nn"
	"ndpipe/internal/photostore"
	"ndpipe/internal/wire"
)

func newStore(t *testing.T, images int) (*Node, *dataset.World) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(31)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)
	n, err := New("ps-test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(world.Images()); err != nil {
		t.Fatal(err)
	}
	return n, world
}

func TestIngestStoresRawAndPreproc(t *testing.T) {
	n, world := newStore(t, 200)
	if n.NumImages() != 200 {
		t.Fatalf("NumImages = %d", n.NumImages())
	}
	img := world.Images()[0]
	raw, err := n.Storage().GetRaw(img.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dataset.BlobID(raw) != img.ID {
		t.Fatal("raw blob not stamped with its ID")
	}
	pre, err := n.Storage().GetPreproc(img.ID)
	if err != nil {
		t.Fatal(err)
	}
	feat, err := core.DecodeFloats(pre)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range img.Feat {
		if feat[i] != v {
			t.Fatal("preprocessed binary corrupted")
		}
	}
	u := n.Storage().Usage()
	if u.OverheadFraction <= 0 {
		t.Fatal("offloaded preprocessing must add storage overhead")
	}
}

func TestIngestRejectsWrongDim(t *testing.T) {
	cfg := core.DefaultModelConfig()
	n, err := New("x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := dataset.Image{ID: 1, Feat: []float64{1, 2}}
	if err := n.Ingest([]dataset.Image{bad}); err == nil {
		t.Fatal("wrong feature dim must be rejected")
	}
}

func TestExtractRunsCoversShardOnce(t *testing.T) {
	n, world := newStore(t, 300)
	seen := map[uint64]int{}
	var batches int
	finalsByRun := map[int]int{}
	err := n.ExtractRuns(3, 64, func(m *wire.Message) error {
		batches++
		if m.Type != wire.MsgFeatures || m.Cols != core.DefaultModelConfig().FeatureDim {
			t.Fatalf("bad message: %+v", m.Type)
		}
		if m.Rows != len(m.Labels) || m.Rows != len(m.IDs) {
			t.Fatal("inconsistent batch metadata")
		}
		for _, id := range m.IDs {
			seen[id]++
		}
		if m.Final {
			finalsByRun[m.Run]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != world.NumImages() {
		t.Fatalf("extracted %d unique images of %d", len(seen), world.NumImages())
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("image %d extracted %d times", id, c)
		}
	}
	for r := 0; r < 3; r++ {
		if finalsByRun[r] != 1 {
			t.Fatalf("run %d had %d final batches", r, finalsByRun[r])
		}
	}
	if batches < 3 {
		t.Fatalf("expected multiple batches, got %d", batches)
	}
}

func TestExtractFeaturesMatchBackbone(t *testing.T) {
	n, world := newStore(t, 50)
	cfg := core.DefaultModelConfig()
	backbone := cfg.NewBackbone()
	byID := map[uint64]dataset.Image{}
	for _, img := range world.Images() {
		byID[img.ID] = img
	}
	err := n.ExtractRuns(1, 16, func(m *wire.Message) error {
		for i := 0; i < m.Rows; i++ {
			img := byID[m.IDs[i]]
			b := dataset.BatchOfImages([]dataset.Image{img}, cfg.InputDim)
			want := backbone.Forward(b.X)
			for j := 0; j < m.Cols; j++ {
				if m.X[i*m.Cols+j] != want.At(0, j) {
					t.Fatalf("feature mismatch for image %d", img.ID)
				}
			}
			if m.Labels[i] != img.Class {
				t.Fatal("label mismatch")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaUpdatesClassifier(t *testing.T) {
	n, _ := newStore(t, 20)
	cfg := core.DefaultModelConfig()
	// Simulate the tuner: train a replica, diff against v0.
	clf := cfg.NewClassifier()
	base := clf.TakeSnapshot()
	for _, p := range clf.TrainableParams() {
		p.W.Data[0] += 1.5
	}
	d, err := delta.Diff(base, clf.TakeSnapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyDelta(blob, 7); err != nil {
		t.Fatal(err)
	}
	if n.ModelVersion() != 7 {
		t.Fatalf("version %d, want 7", n.ModelVersion())
	}
	if err := n.ApplyDelta([]byte{1, 2, 3}, 8); err == nil {
		t.Fatal("garbage delta must fail")
	}
	if n.ModelVersion() != 7 {
		t.Fatal("failed delta must not bump the version")
	}
}

func TestOfflineInferLabelsEveryImage(t *testing.T) {
	n, world := newStore(t, 150)
	labels, err := n.OfflineInfer(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != world.NumImages() {
		t.Fatalf("labeled %d of %d", len(labels), world.NumImages())
	}
	cfg := core.DefaultModelConfig()
	for _, l := range labels {
		if l < 0 || l >= cfg.Classes {
			t.Fatalf("label %d out of range", l)
		}
	}
	// Deterministic: same model, same labels.
	again, err := n.OfflineInfer(64)
	if err != nil {
		t.Fatal(err)
	}
	for id, l := range labels {
		if again[id] != l {
			t.Fatalf("nondeterministic label for %d", id)
		}
	}
}

func TestOfflineInferMatchesDirectForward(t *testing.T) {
	n, world := newStore(t, 40)
	cfg := core.DefaultModelConfig()
	full := nn.Stack(cfg.NewBackbone(), cfg.NewClassifier())
	labels, err := n.OfflineInfer(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range world.Images()[:10] {
		b := dataset.BatchOfImages([]dataset.Image{img}, cfg.InputDim)
		want := full.Forward(b.X).ArgmaxRows()[0]
		if labels[img.ID] != want {
			t.Fatalf("image %d: pipeline label %d != direct %d", img.ID, labels[img.ID], want)
		}
	}
}

func TestExtractRunsEmptyShard(t *testing.T) {
	n, err := New("empty", core.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ExtractRuns(1, 8, func(*wire.Message) error { return nil }); err == nil {
		t.Fatal("empty shard must error")
	}
}

func TestDiskBackedPipeStore(t *testing.T) {
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(33)
	wcfg.InitialImages = 120
	world := dataset.NewWorld(wcfg)
	disk, err := photostore.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewWithStorage("disk-store", cfg, disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(world.Images()); err != nil {
		t.Fatal(err)
	}
	// Feature extraction reads compressed binaries off the real filesystem.
	seen := 0
	err = n.ExtractRuns(2, 32, func(m *wire.Message) error {
		seen += m.Rows
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 120 {
		t.Fatalf("extracted %d of 120", seen)
	}
	labels, err := n.OfflineInfer(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 120 {
		t.Fatalf("labeled %d of 120", len(labels))
	}
	if _, err := NewWithStorage("x", cfg, nil); err == nil {
		t.Fatal("nil store must be rejected")
	}
}
