package pipestore

import (
	"math/rand"
	"strings"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/delta"
	"ndpipe/internal/telemetry"
)

// TestQuantizedOfflineInferDeterministic: quantization is derived only from
// the model config (calibration batch included), so two quantized stores
// over the same photos produce bitwise-identical labels — replicas stay
// interchangeable, exactly like the f64 fleet.
func TestQuantizedOfflineInferDeterministic(t *testing.T) {
	a, world := newStore(t, 200)
	if err := a.SetQuantize(); err != nil {
		t.Fatal(err)
	}
	if !a.Quantized() {
		t.Fatal("Quantized() must report the int8 replica")
	}
	b, err := New("ps-test-b", core.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetQuantize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(world.Images()); err != nil {
		t.Fatal(err)
	}
	la, err := a.OfflineInfer(64)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.OfflineInfer(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(la) != 200 || len(lb) != 200 {
		t.Fatalf("labeled %d/%d photos, want 200", len(la), len(lb))
	}
	for id, l := range la {
		if lb[id] != l {
			t.Fatalf("photo %d labeled %d vs %d across identical quantized replicas", id, l, lb[id])
		}
	}
	// Quantization perturbs embeddings but must not scramble them: most
	// labels agree with the f64 replica even under an untrained head.
	c, _ := newStore(t, 200)
	lc, err := c.OfflineInfer(64)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for id, l := range la {
		if lc[id] == l {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(la)); frac < 0.8 {
		t.Fatalf("only %.0f%% of int8 labels agree with f64", frac*100)
	}
}

// TestApplyDeltaCompressedGuards pins the protocol rules a store enforces on
// an incoming compressed delta: never combined with a rebase, envelope and
// blob header must agree, and a good blob lands the store bitwise on the
// compressor's shipped state (with the encoding surfaced in the flight
// recorder).
func TestApplyDeltaCompressedGuards(t *testing.T) {
	n, _ := newStore(t, 10)
	reg := telemetry.NewRegistry()
	n.SetRegistry(reg)

	comp, err := delta.NewCompressor(delta.EncodingInt8, n.ClassifierSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	// ClassifierSnapshot returns a copy; perturb it into a training target.
	target := n.ClassifierSnapshot()
	for _, m := range target {
		for i := range m.Data {
			m.Data[i] += rng.NormFloat64() * 0.01
		}
	}
	blob, err := comp.Compress(target)
	if err != nil {
		t.Fatal(err)
	}

	if err := n.applyDelta(blob, 1, true, delta.EncodingInt8); err == nil {
		t.Fatal("compressed delta combined with rebase must be rejected")
	}
	if err := n.applyDelta(blob, 1, false, delta.EncodingTopK); err == nil ||
		!strings.Contains(err.Error(), "envelope") {
		t.Fatalf("blob/envelope encoding mismatch must be rejected, got %v", err)
	}
	if err := n.applyDelta(blob, 1, false, delta.Encoding(9)); err == nil {
		t.Fatal("unknown encoding must be rejected")
	}
	if v := n.ModelVersion(); v != 0 {
		t.Fatalf("rejected deltas must not advance the version (v%d)", v)
	}

	if err := n.applyDelta(blob, 1, false, delta.EncodingInt8); err != nil {
		t.Fatal(err)
	}
	if n.ModelVersion() != 1 {
		t.Fatalf("version %d after apply, want 1", n.ModelVersion())
	}
	if !delta.SnapshotsEqual(n.ClassifierSnapshot(), comp.Shipped(), 0) {
		t.Fatal("store state must be bitwise the compressor's shipped snapshot")
	}
	found := false
	for _, ev := range reg.Flight().Events() {
		if ev.Kind == telemetry.FlightDeltaApply && ev.Code == "ps-test/int8" &&
			ev.V1 == 1 && ev.V2 == int64(len(blob)) {
			found = true
		}
	}
	if !found {
		t.Fatal("delta-apply flight event must carry the wire encoding")
	}
}
