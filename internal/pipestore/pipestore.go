// Package pipestore implements the PipeStore node: a storage server with an
// on-board execution engine that performs near-data feature extraction for
// FT-DMP fine-tuning and near-data offline inference, exactly as §5
// describes. It stores photos (raw + compressed preprocessed binaries) in a
// photostore, runs the NPE 3-stage pipeline (load → decompress/decode →
// forward), and speaks the wire protocol to a Tuner.
package pipestore

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/durable"
	"ndpipe/internal/nn"
	"ndpipe/internal/npe"
	"ndpipe/internal/photostore"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
	"ndpipe/internal/wire"
)

// preprocBufs recycles the per-photo preprocessed-binary encode buffers
// (see Ingest): the object store compresses the bytes synchronously, so the
// buffer never outlives the PutPreproc call.
var preprocBufs sync.Pool

// Node is one PipeStore.
type Node struct {
	ID  string
	cfg core.ModelConfig

	backbone *nn.Network
	// quant is the calibrated int8 replica of the frozen backbone, installed
	// by SetQuantize. Non-nil means every backbone forward (feature
	// extraction and offline inference) runs through the int8 kernels.
	quant *nn.QuantNetwork

	// wantEnc is the delta wire encoding advertised in the Hello
	// (SetDeltaEncoding; zero value = legacy dense). The Tuner may still send
	// dense blobs — catch-ups always are — so every apply is routed by the
	// message's own DeltaEncoding field, not by this preference.
	wantEnc delta.Encoding
	// flightCodes caches the "<id>/<encoding>" detail strings for delta-apply
	// flight events, keeping the hot path allocation-free.
	flightCodes [3]string

	mu         sync.Mutex
	clf        *nn.Network
	clfSnap    nn.Snapshot // base snapshot deltas apply to
	clfVersion int
	images     []dataset.Image
	imageIdx   map[uint64]int // image ID → index in images (replica dedup)
	store      photostore.ObjectStore

	// Durability plumbing (see scrub.go): replicaSrc answers read-repair
	// fetches when the node runs in-process next to its replicas (over the
	// wire the tuner brokers repair instead); scrubCursor remembers where
	// the bounded-rate background scrub left off. scrubMu serializes this
	// node's scrub passes (the background loop and any synchronous
	// MsgScrubQuery-driven pass): the cursor is single-writer by
	// construction. Per node, so one store's slow repair never blocks
	// another's scrubbing in an in-process fleet.
	replicaSrc  ReplicaSource
	scrubCursor uint64
	scrubMu     sync.Mutex

	// Crash consistency (see persist.go): with a state dir open, every
	// applied delta atomically persists the new snapshot + version before
	// it is acked, so a restarted store re-registers at its real version.
	stateDir    string
	stateFaults *durable.Faults

	met    nodeMetrics
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	log    *slog.Logger

	// Fleet observability: connected flips while Serve holds a tuner
	// connection (the /readyz "tuner-connected" check reads it), metricsSeq
	// numbers MsgMetrics shipments so the tuner-side aggregator can drop
	// stale or duplicate snapshots, and metricsEvery rate-limits shipments
	// (the first one goes immediately; see SetMetricsInterval).
	connected    atomic.Bool
	metricsSeq   atomic.Uint64
	metricsEvery time.Duration
	lastShip     atomic.Int64 // unix-nano of the last shipment (0 = never)

	// fence is the highest leadership epoch this store has seen (S35).
	// Messages stamped with a lower non-zero epoch come from a deposed
	// leader and are rejected without execution — across sessions, so a
	// stale leader reconnecting after a failover stays fenced. Zero-stamped
	// messages (pre-HA or single-tuner peers) always pass.
	fence atomic.Uint64
}

// DefaultMetricsInterval is how often a store ships its registry snapshot to
// the tuner's fleet aggregator (piggy-backed on command replies).
const DefaultMetricsInterval = 5 * time.Second

// nodeMetrics holds the per-store instruments (labeled by store ID) plus the
// shared NPE stage histograms. Registered once in New; hot paths only touch
// the cached pointers.
type nodeMetrics struct {
	ingested       *telemetry.Counter
	featureBatches *telemetry.Counter
	deltasApplied  *telemetry.Counter
	fencedMsgs     *telemetry.Counter
	modelVersion   *telemetry.Gauge
	extractRun     *telemetry.Histogram
	offlineInfer   *telemetry.Histogram
	stagesFT       *npe.StageMetrics
	stagesInfer    *npe.StageMetrics

	// Durability instruments (scrub, read-repair, replication).
	scrubObjects   *telemetry.Counter
	scrubCorrupt   *telemetry.Counter
	scrubBytes     *telemetry.Counter
	repairs        *telemetry.Counter
	repairFails    *telemetry.Counter
	extractSkips   *telemetry.Counter
	replicaIngests *telemetry.Counter
	replicaRejects *telemetry.Counter
}

func newNodeMetrics(reg *telemetry.Registry, id string) nodeMetrics {
	lbl := func(name string) string { return telemetry.Labeled(name, "store", id) }
	return nodeMetrics{
		ingested:       reg.Counter(lbl("pipestore_images_ingested_total")),
		featureBatches: reg.Counter(lbl("pipestore_feature_batches_total")),
		deltasApplied:  reg.Counter(lbl("pipestore_deltas_applied_total")),
		fencedMsgs:     reg.Counter(lbl("pipestore_fenced_msgs_total")),
		modelVersion:   reg.Gauge(lbl("pipestore_model_version")),
		extractRun:     reg.Histogram(lbl("pipestore_extract_run_seconds")),
		offlineInfer:   reg.Histogram(lbl("pipestore_offline_infer_seconds")),
		stagesFT:       npe.NewStageMetrics(reg, "finetune"),
		stagesInfer:    npe.NewStageMetrics(reg, "offline-inference"),
		scrubObjects:   reg.Counter(lbl("pipestore_scrub_objects_total")),
		scrubCorrupt:   reg.Counter(lbl("pipestore_scrub_corrupt_total")),
		scrubBytes:     reg.Counter(lbl("pipestore_scrub_bytes_total")),
		repairs:        reg.Counter(lbl("pipestore_repairs_total")),
		repairFails:    reg.Counter(lbl("pipestore_repair_failures_total")),
		extractSkips:   reg.Counter(lbl("pipestore_extract_skips_total")),
		replicaIngests: reg.Counter(lbl("pipestore_replica_ingests_total")),
		replicaRejects: reg.Counter(lbl("pipestore_replica_rejects_total")),
	}
}

// New creates a PipeStore with the deterministic backbone/classifier
// replicas for cfg, backed by an in-memory object store.
func New(id string, cfg core.ModelConfig) (*Node, error) {
	return NewWithStorage(id, cfg, photostore.New())
}

// NewWithStorage creates a PipeStore over an explicit object store — pass a
// photostore.DiskStore for a durable node whose NPE load stage performs
// real file I/O.
func NewWithStorage(id string, cfg core.ModelConfig, store photostore.ObjectStore) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("pipestore %s: nil object store", id)
	}
	n := &Node{
		ID:           id,
		cfg:          cfg,
		backbone:     cfg.NewBackbone(),
		clf:          cfg.NewClassifier(),
		store:        store,
		imageIdx:     make(map[uint64]int),
		met:          newNodeMetrics(telemetry.Default, id),
		reg:          telemetry.Default,
		metricsEvery: DefaultMetricsInterval,
		tracer:       telemetry.Default.Spans(),
		log:          telemetry.ComponentLogger("pipestore").With(slog.String("store", id)),
	}
	n.clfSnap = n.clf.TakeSnapshot()
	for _, e := range []delta.Encoding{delta.EncodingDense, delta.EncodingTopK, delta.EncodingInt8} {
		n.flightCodes[e] = id + "/" + e.String()
	}
	return n, nil
}

// SetQuantize switches the frozen backbone to its calibrated int8 replica
// (core.ModelConfig.NewQuantBackbone): feature extraction and offline
// inference run the int8 kernels, the f64 classifier and everything the
// Tuner trains are untouched. Same-config nodes quantize identically, so
// fleet embeddings stay bitwise-reproducible. Errors when the backbone
// architecture is not quantizable (the CNN extractor). Call before traffic.
func (n *Node) SetQuantize() error {
	qn, err := n.cfg.NewQuantBackbone()
	if err != nil {
		return fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	n.mu.Lock()
	n.quant = qn
	n.mu.Unlock()
	return nil
}

// Quantized reports whether the int8 backbone is installed.
func (n *Node) Quantized() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.quant != nil
}

// SetDeltaEncoding sets the compressed delta codec this store advertises in
// its Hello (delta.EncodingTopK or delta.EncodingInt8; the zero value keeps
// the legacy dense wire format). Call before Serve.
func (n *Node) SetDeltaEncoding(enc delta.Encoding) error {
	if !enc.Valid() {
		return fmt.Errorf("pipestore %s: invalid delta encoding %v", n.ID, enc)
	}
	n.wantEnc = enc
	return nil
}

// forwardBackboneLocked runs the active backbone replica (int8 when
// SetQuantize installed one, f64 otherwise) on a batch. Callers must hold
// n.mu; the returned matrix is network-owned scratch, valid only until the
// next forward.
func (n *Node) forwardBackboneLocked(x *tensor.Matrix) *tensor.Matrix {
	if n.quant != nil {
		return n.quant.Forward(x)
	}
	return n.backbone.Forward(x)
}

// SetTracer replaces the node's span tracer (default: the process-wide
// telemetry.Default tracer). Tests use a private tracer per node to prove
// that spans reach the Tuner only by being shipped over the wire, exactly
// as they would from a separate process.
func (n *Node) SetTracer(tr *telemetry.Tracer) {
	if tr != nil {
		n.tracer = tr
	}
}

// SetRegistry moves the node's instruments into a private registry —
// re-registering the per-store metrics there and switching the tracer and
// flight recorder along with them. In-process fleet simulations (the obs
// experiment, the fleet tests) give each simulated store its own registry so
// the snapshots it ships over MsgMetrics carry only that store's series,
// exactly as a separate process would. Call before Serve or any traffic.
func (n *Node) SetRegistry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	n.reg = reg
	n.met = newNodeMetrics(reg, n.ID)
	n.tracer = reg.Spans()
}

// Registry returns the registry the node instruments into (telemetry.Default
// unless SetRegistry replaced it).
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// SetMetricsInterval sets the minimum spacing between MsgMetrics shipments
// (default DefaultMetricsInterval). Zero or negative ships after every
// command — what fleet tests use to see fresh rollups immediately.
func (n *Node) SetMetricsInterval(d time.Duration) { n.metricsEvery = d }

// Connected reports whether the node currently holds a live tuner
// connection — the /readyz "tuner-connected" health check.
func (n *Node) Connected() bool { return n.connected.Load() }

// Ingest stores a batch of uploaded photos: the raw blob and the
// preprocessed binary (the inference server's +Offload output), which the
// photostore deflate-compresses (+Comp).
func (n *Node) Ingest(imgs []dataset.Image) error {
	for _, img := range imgs {
		if len(img.Feat) != n.cfg.InputDim {
			return fmt.Errorf("pipestore %s: image %d has dim %d, want %d",
				n.ID, img.ID, len(img.Feat), n.cfg.InputDim)
		}
		raw := img.Raw
		if raw == nil {
			// No client payload attached: regenerate the deterministic
			// content (off-path uses like training-set backfill).
			raw = dataset.Blob(img.ID, dataset.DefaultJPEGSpec())
		}
		n.store.Put(img.ID, raw)
		// PutPreproc copies (compresses) the binary before returning, so the
		// encode buffer can be recycled — one less allocation per photo on
		// the upload hot path.
		buf, _ := preprocBufs.Get().([]byte)
		enc := core.AppendFloats(buf[:0], img.Feat)
		err := n.store.PutPreproc(img.ID, enc)
		preprocBufs.Put(enc)
		if err != nil {
			return err
		}
	}
	n.mu.Lock()
	for _, img := range imgs {
		// Replicated ingest can deliver the same photo twice (a retry, or a
		// repair re-put): the newest copy replaces the old entry instead of
		// double-counting it in extraction rounds.
		if idx, ok := n.imageIdx[img.ID]; ok {
			n.images[idx] = img
			continue
		}
		n.imageIdx[img.ID] = len(n.images)
		n.images = append(n.images, img)
	}
	n.mu.Unlock()
	n.met.ingested.Add(int64(len(imgs)))
	return nil
}

// NumImages returns the shard size.
func (n *Node) NumImages() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.images)
}

// Storage exposes the underlying object store (read-mostly; used by tests
// and the usage accounting).
func (n *Node) Storage() photostore.ObjectStore { return n.store }

// ModelVersion returns the classifier version currently installed.
func (n *Node) ModelVersion() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clfVersion
}

// ClassifierSnapshot returns a deep copy of the installed classifier state
// (what the store would persist), for recovery assertions and experiments.
func (n *Node) ClassifierSnapshot() nn.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(nn.Snapshot, len(n.clfSnap))
	for k, m := range n.clfSnap {
		out[k] = m.Clone()
	}
	return out
}

// loadedImage is an item flowing through the NPE pipeline.
type loadedImage struct {
	img  dataset.Image
	blob []byte // compressed preprocessed binary
}

type decodedImage struct {
	img  dataset.Image
	feat []float64
}

// ExtractRuns splits the local shard into nrun sub-shards and, for each
// run, pushes feature batches through emit. The NPE 3-stage pipeline
// overlaps storage reads, CPU decompression/decoding and the forward pass.
func (n *Node) ExtractRuns(nrun, batch int, emit func(*wire.Message) error) error {
	return n.ExtractRunsTraced(telemetry.SpanContext{}, nrun, batch, emit)
}

// ExtractRunsTraced is ExtractRuns inside a distributed trace: tc is the
// remote parent carried in the Tuner's MsgTrainRequest (an empty context
// starts a store-local trace). The extraction root span, per-run spans and
// the Fig-6 stage spans (read/preproc/fecl) all land in the node's tracer,
// from which Serve ships them back to the Tuner.
func (n *Node) ExtractRunsTraced(tc telemetry.SpanContext, nrun, batch int, emit func(*wire.Message) error) error {
	if nrun < 1 {
		nrun = 1
	}
	if batch < 1 {
		batch = 128
	}
	n.mu.Lock()
	shard := append([]dataset.Image(nil), n.images...)
	n.mu.Unlock()
	if len(shard) == 0 {
		return fmt.Errorf("pipestore %s: no images to extract", n.ID)
	}
	return n.extractShardTraced(tc, shard, 0, nrun, batch, emit, false)
}

// extractShardTraced partitions shard across runs [fromRun, nrun) and
// extracts each. fromRun > 0 is the re-extraction path: the tuner re-sent
// the round's request after an eviction, and this store covers the dead
// peer's photos only for the runs not yet trained. Every run closes with a
// Final batch even when its slice is empty — the tuner's gather counts
// finals, and a silent run would stall the round.
func (n *Node) extractShardTraced(tc telemetry.SpanContext, shard []dataset.Image, fromRun, nrun, batch int, emit func(*wire.Message) error, skipMissing bool) error {
	parts := nrun - fromRun
	if parts < 1 {
		return nil
	}
	span := n.tracer.StartSpanIn(tc, "pipestore.extract")
	span.SetAttr("store", n.ID)
	defer span.End()
	per := len(shard) / parts
	for r := fromRun; r < nrun; r++ {
		k := r - fromRun
		lo := k * per
		hi := lo + per
		if r == nrun-1 {
			hi = len(shard)
		}
		if err := n.extractRun(span.Context(), r, shard[lo:hi], batch, emit, skipMissing); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) extractRun(tc telemetry.SpanContext, run int, shard []dataset.Image, batch int, emit func(*wire.Message) error, skipMissing bool) error {
	runSpan := n.tracer.StartSpanIn(tc, "pipestore.extract-run")
	runSpan.SetAttr("store", n.ID)
	runSpan.SetAttr("run", fmt.Sprint(run))
	runCtx := runSpan.Context()
	n.reg.Flight().Record(telemetry.FlightExtractRun, "pipestore", n.ID, int64(run), int64(len(shard)))
	defer func(t0 time.Time) {
		runSpan.End()
		n.met.extractRun.Observe(time.Since(t0).Seconds())
	}(time.Now())
	var pending []decodedImage
	nBatches := (len(shard) + batch - 1) / batch
	sent := 0
	finalSent := false
	flush := func(final bool) error {
		if len(pending) == 0 {
			return nil
		}
		msg, err := n.featureBatch(run, pending, final)
		if err != nil {
			return err
		}
		msg.SetTraceContext(runCtx)
		pending = pending[:0]
		sent++
		if final {
			finalSent = true
		}
		n.met.featureBatches.Inc()
		return emit(msg)
	}
	if len(shard) > 0 {
		err := npe.Run3StageTraced(shard,
			func(img dataset.Image) (loadedImage, error) {
				blob, err := n.store.GetPreprocCompressed(img.ID)
				if err != nil {
					if skipMissing {
						// Quarantined or missing object: serve the healthy
						// rest of the shard and let repair catch this one up,
						// instead of failing the whole round.
						n.met.extractSkips.Inc()
						return loadedImage{img: img}, nil
					}
					return loadedImage{}, err
				}
				return loadedImage{img: img, blob: blob}, nil
			},
			func(li loadedImage) (decodedImage, error) {
				if li.blob == nil {
					return decodedImage{img: li.img}, nil // skipped upstream
				}
				raw, err := inflate(li.blob)
				if err != nil {
					return decodedImage{}, err
				}
				feat, err := core.DecodeFloats(raw)
				if err != nil {
					return decodedImage{}, err
				}
				return decodedImage{img: li.img, feat: feat}, nil
			},
			func(di decodedImage) error {
				if di.feat == nil {
					return nil // skipped upstream
				}
				pending = append(pending, di)
				if len(pending) >= batch {
					return flush(sent == nBatches-1)
				}
				return nil
			},
			4,
			n.met.stagesFT,
			&npe.StageTrace{Tracer: n.tracer, Parent: runCtx},
		)
		if err != nil {
			return err
		}
		if err := flush(true); err != nil {
			return err
		}
	}
	if !finalSent {
		// Empty slice (or every batch skipped): the run still owes the tuner
		// its Final marker, as a zero-row batch.
		msg := &wire.Message{Type: wire.MsgFeatures, StoreID: n.ID, Run: run,
			Cols: n.cfg.FeatureDim, Final: true}
		msg.SetTraceContext(runCtx)
		n.met.featureBatches.Inc()
		return emit(msg)
	}
	return nil
}

// featureBatch runs the frozen backbone over a decoded batch and wraps the
// embeddings in a wire message. The input matrix comes from the tensor
// scratch arena, and the embeddings are copied out of the backbone's layer
// scratch before the lock drops (the network's Forward output is only valid
// until its next Forward — see the nn.Layer contract).
func (n *Node) featureBatch(run int, items []decodedImage, final bool) (*wire.Message, error) {
	x := tensor.Get(len(items), n.cfg.InputDim)
	defer tensor.Put(x)
	labels := make([]int, len(items))
	ids := make([]uint64, len(items))
	for i, it := range items {
		copy(x.Row(i), it.feat)
		labels[i] = it.img.Class
		ids[i] = it.img.ID
	}
	n.mu.Lock()
	feats := n.forwardBackboneLocked(x)
	rows, cols := feats.Rows, feats.Cols
	data := append([]float64(nil), feats.Data...)
	n.mu.Unlock()
	return &wire.Message{
		Type:    wire.MsgFeatures,
		StoreID: n.ID,
		Run:     run,
		Rows:    rows,
		Cols:    cols,
		X:       data,
		Labels:  labels,
		IDs:     ids,
		Final:   final,
	}, nil
}

// ApplyDelta installs a Check-N-Run classifier delta broadcast by the Tuner.
func (n *Node) ApplyDelta(blob []byte, version int) error {
	return n.applyDelta(blob, version, false, delta.EncodingDense)
}

// applyDelta installs a delta against the current snapshot — or, when
// rebase is set, against the deterministic initial classifier (the Tuner
// sends rebase catch-ups when this store's version predates its pruned
// history floor). Dense blobs assign absolute weights; compressed blobs
// (enc != EncodingDense) apply additively against the exact state the
// Tuner's compressor tracks for this store, so they are never combined
// with a rebase. With a state dir open the new state is made durable
// before the method returns, so the ack that follows is a promise the
// store keeps across restarts.
func (n *Node) applyDelta(blob []byte, version int, rebase bool, enc delta.Encoding) error {
	if !enc.Valid() {
		return fmt.Errorf("pipestore %s: unknown delta encoding %d", n.ID, enc)
	}
	if enc != delta.EncodingDense && rebase {
		return fmt.Errorf("pipestore %s: compressed delta cannot be a rebase", n.ID)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var snap nn.Snapshot
	if enc == delta.EncodingDense {
		d, err := delta.Decode(blob)
		if err != nil {
			return fmt.Errorf("pipestore %s: %w", n.ID, err)
		}
		base := n.clfSnap
		if rebase {
			base = n.cfg.NewClassifier().TakeSnapshot()
		}
		snap, err = d.Apply(base)
		if err != nil {
			return fmt.Errorf("pipestore %s: %w", n.ID, err)
		}
	} else {
		cd, err := delta.DecodeCompressed(blob)
		if err != nil {
			return fmt.Errorf("pipestore %s: %w", n.ID, err)
		}
		if cd.Enc != enc {
			return fmt.Errorf("pipestore %s: blob is %v but envelope says %v", n.ID, cd.Enc, enc)
		}
		snap, err = cd.ApplyAdd(n.clfSnap)
		if err != nil {
			return fmt.Errorf("pipestore %s: %w", n.ID, err)
		}
	}
	if err := n.clf.Restore(snap); err != nil {
		return fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	prevSnap, prevVersion := n.clfSnap, n.clfVersion
	n.clfSnap = snap
	n.clfVersion = version
	if err := n.persistStateLocked(); err != nil {
		// Roll back: an unpersistable delta must not be acked, and the
		// in-memory model must agree with what we would recover to.
		n.clfSnap, n.clfVersion = prevSnap, prevVersion
		_ = n.clf.Restore(prevSnap)
		return err
	}
	n.met.deltasApplied.Inc()
	n.met.modelVersion.Set(float64(version))
	// The flight event names the wire encoding alongside the store, so a
	// post-mortem dump shows which deltas arrived compressed and how big.
	n.reg.Flight().Record(telemetry.FlightDeltaApply, "pipestore", n.flightCodes[enc], int64(version), int64(len(blob)))
	return nil
}

// OfflineInfer relabels every locally stored photo with the current model,
// entirely near the data: it reads the compressed binaries, decodes them,
// and runs backbone+classifier. Only labels leave the node.
func (n *Node) OfflineInfer(batch int) (map[uint64]int, error) {
	return n.OfflineInferTraced(telemetry.SpanContext{}, batch)
}

// OfflineInferTraced is OfflineInfer inside a distributed trace, parented
// at the Tuner's MsgInferRequest span when tc is set.
func (n *Node) OfflineInferTraced(tc telemetry.SpanContext, batch int) (map[uint64]int, error) {
	n.mu.Lock()
	shard := append([]dataset.Image(nil), n.images...)
	n.mu.Unlock()
	return n.offlineInferShard(tc, shard, batch)
}

// offlineInferShard relabels one image shard — the whole local holding on
// the legacy path, or just the owned subset under ring routing.
func (n *Node) offlineInferShard(tc telemetry.SpanContext, shard []dataset.Image, batch int) (map[uint64]int, error) {
	span := n.tracer.StartSpanIn(tc, "pipestore.offline-infer")
	span.SetAttr("store", n.ID)
	stageCtx := span.Context()
	defer func(t0 time.Time) {
		span.End()
		n.met.offlineInfer.Observe(time.Since(t0).Seconds())
	}(time.Now())
	if batch < 1 {
		batch = 128
	}
	n.mu.Lock()
	clf := n.clf
	n.mu.Unlock()
	out := make(map[uint64]int, len(shard))
	var pending []decodedImage
	classify := func() error {
		if len(pending) == 0 {
			return nil
		}
		x := tensor.Get(len(pending), n.cfg.InputDim)
		for i, it := range pending {
			copy(x.Row(i), it.feat)
		}
		// ArgmaxRows must run before the unlock: logits is the classifier's
		// layer scratch and the next Forward (any goroutine) overwrites it.
		n.mu.Lock()
		logits := clf.Forward(n.forwardBackboneLocked(x))
		preds := logits.ArgmaxRows()
		n.mu.Unlock()
		tensor.Put(x)
		for i, it := range pending {
			out[it.img.ID] = preds[i]
		}
		pending = pending[:0]
		return nil
	}
	err := npe.Run3StageTraced(shard,
		func(img dataset.Image) (loadedImage, error) {
			blob, err := n.store.GetPreprocCompressed(img.ID)
			if err != nil {
				return loadedImage{}, err
			}
			return loadedImage{img: img, blob: blob}, nil
		},
		func(li loadedImage) (decodedImage, error) {
			raw, err := inflate(li.blob)
			if err != nil {
				return decodedImage{}, err
			}
			feat, err := core.DecodeFloats(raw)
			if err != nil {
				return decodedImage{}, err
			}
			return decodedImage{img: li.img, feat: feat}, nil
		},
		func(di decodedImage) error {
			pending = append(pending, di)
			if len(pending) >= batch {
				return classify()
			}
			return nil
		},
		4,
		n.met.stagesInfer,
		&npe.StageTrace{Tracer: n.tracer, Parent: stageCtx},
	)
	if err != nil {
		return nil, err
	}
	if err := classify(); err != nil {
		return nil, err
	}
	return out, nil
}

// Serve speaks the wire protocol on conn until the peer disconnects:
// registration, then TrainRequest / ModelDelta / InferRequest commands.
// Commands carrying a trace context are executed under spans parented at
// the Tuner's remote span, and the finished spans are shipped back in a
// MsgSpans envelope before the command's closing message, so the Tuner's
// collector holds the store's side of the round by the time the round
// completes.
//
// Reading and command execution are split across two goroutines so that a
// liveness ping is answered immediately even while the node is deep in a
// long extraction or inference — otherwise a busy store would be
// indistinguishable from a dead one and the Tuner's silent-death detector
// would evict it. Codec sends are mutex-serialized, so the pong cannot
// interleave with an in-flight feature batch.
func (n *Node) Serve(conn net.Conn) error {
	defer conn.Close()
	n.connected.Store(true)
	defer n.connected.Store(false)
	c := wire.NewCodec(conn)
	// The Hello advertises our persisted model version, so the Tuner ships
	// only the catch-up for rounds we missed (nothing, if we're current) —
	// and the compressed delta codec we can decode (zero = legacy dense).
	if err := c.Send(&wire.Message{Type: wire.MsgHello, StoreID: n.ID,
		ModelVersion: n.ModelVersion(), DeltaEncoding: uint8(n.wantEnc)}); err != nil {
		return err
	}
	cmds := make(chan *wire.Message)
	readErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(cmds)
		for {
			msg, err := c.Recv()
			if err != nil {
				readErr <- err
				return
			}
			if !n.admitLeader(msg) {
				// A deposed leader's delayed or replayed command: refuse it
				// before it can reach execution — not even a pong, so the
				// stale leader cannot mistake this store for a follower.
				_ = c.Send(&wire.Message{Type: wire.MsgError, StoreID: n.ID, Epoch: msg.Epoch,
					Err: fmt.Sprintf("fenced: leader epoch %d below %d", msg.LeaderEpoch, n.fence.Load())})
				continue
			}
			if msg.Type == wire.MsgPing {
				_ = c.Send(&wire.Message{Type: wire.MsgPong, StoreID: n.ID, Epoch: msg.Epoch})
				continue
			}
			select {
			case cmds <- msg:
			case <-done:
				return
			}
		}
	}()
	for msg := range cmds {
		if err := n.serveOne(c, msg); err != nil {
			return err
		}
		// Piggy-back a registry snapshot on the command's tail, after the
		// closing reply: the Tuner's catch-up path does a direct Recv for the
		// ack, and shipping metrics behind it keeps that exchange in order.
		n.shipMetrics(c)
	}
	err := <-readErr
	if err == io.EOF {
		n.log.Debug("tuner disconnected")
		return nil
	}
	return err
}

// admitLeader is the leader-epoch fence: it admits unfenced (epoch-0)
// messages, admits and remembers anything at or above the highest epoch
// seen so far, and rejects the rest — a deposed leader's traffic, however
// delayed or replayed, can never advance this store's state.
func (n *Node) admitLeader(msg *wire.Message) bool {
	le := msg.LeaderEpoch
	if le == 0 {
		return true
	}
	for {
		cur := n.fence.Load()
		if le < cur {
			n.met.fencedMsgs.Inc()
			telemetry.Default.Flight().Record(telemetry.FlightFenced, "pipestore", n.ID,
				int64(le), int64(cur))
			n.log.Warn("fenced stale leader message",
				slog.String("type", msg.Type.String()),
				slog.Uint64("leader_epoch", le), slog.Uint64("fence", cur))
			return false
		}
		if le == cur {
			return true
		}
		if n.fence.CompareAndSwap(cur, le) {
			if cur != 0 {
				n.log.Info("new leader observed",
					slog.Uint64("leader_epoch", le), slog.Uint64("previous", cur))
			}
			return true
		}
	}
}

// serveOne executes a single Tuner command. Every reply echoes the
// command's round epoch, so if this store is evicted mid-round and later
// rejoins, replies still in flight from the old round are detectably stale
// at the Tuner instead of poisoning the next round.
func (n *Node) serveOne(c *wire.Codec, msg *wire.Message) error {
	tc := msg.TraceContext()
	epoch := msg.Epoch
	logger := n.log.With(telemetry.TraceAttrs(tc)...)
	sendErr := func(cmdErr error) {
		_ = c.Send(&wire.Message{Type: wire.MsgError, StoreID: n.ID, Err: cmdErr.Error(), Epoch: epoch})
	}
	switch msg.Type {
	case wire.MsgTrainRequest:
		logger.Debug("train request", slog.Int("runs", msg.Runs), slog.Int("batch", msg.BatchSize),
			slog.Int("ring", len(msg.RingStores)), slog.Int("from_run", msg.FromRun))
		emit := func(m *wire.Message) error {
			m.Epoch = epoch
			return c.Send(m)
		}
		var err error
		if len(msg.RingStores) > 0 {
			err = n.extractOwned(tc, msg, emit)
		} else {
			err = n.ExtractRunsTraced(tc, msg.Runs, msg.BatchSize, emit)
		}
		n.shipSpans(c, tc.Trace)
		if err != nil {
			logger.Error("feature extraction failed", slog.Any("err", err))
			sendErr(err)
			return err
		}
	case wire.MsgModelDelta:
		span := n.tracer.StartSpanIn(tc, "pipestore.apply-delta")
		span.SetAttr("store", n.ID)
		err := n.applyDelta(msg.Blob, msg.ModelVersion, msg.Rebase, delta.Encoding(msg.DeltaEncoding))
		span.End()
		n.shipSpans(c, tc.Trace)
		if err != nil {
			logger.Error("delta apply failed", slog.Any("err", err))
			sendErr(err)
			return err
		}
		logger.Debug("model delta applied", slog.Int("version", msg.ModelVersion), slog.Int("bytes", len(msg.Blob)))
		if err := c.Send(&wire.Message{Type: wire.MsgAck, StoreID: n.ID, ModelVersion: msg.ModelVersion, Epoch: epoch}); err != nil {
			return err
		}
	case wire.MsgInferRequest:
		logger.Debug("offline-inference request", slog.Int("batch", msg.BatchSize))
		var labels map[uint64]int
		var err error
		if len(msg.RingStores) > 0 {
			labels, err = n.offlineInferOwned(tc, msg)
		} else {
			labels, err = n.OfflineInferTraced(tc, msg.BatchSize)
		}
		n.shipSpans(c, tc.Trace)
		if err != nil {
			logger.Error("offline inference failed", slog.Any("err", err))
			sendErr(err)
			return err
		}
		if err := c.Send(&wire.Message{
			Type: wire.MsgLabels, StoreID: n.ID,
			LabelsOut: labels, ModelVersion: n.ModelVersion(), Epoch: epoch,
		}); err != nil {
			return err
		}
	case wire.MsgObjectPut:
		// Replicated/repaired objects relayed by the tuner. A rejection (CRC
		// mismatch, undecodable payload) fails the batch report but never the
		// connection: the healthy objects are already stored.
		accepted, ierr := n.IngestReplica(msg.Objects)
		logger.Debug("object put", slog.Int("objects", len(msg.Objects)), slog.Int("accepted", accepted))
		if ierr != nil {
			_ = c.Send(&wire.Message{Type: wire.MsgError, StoreID: n.ID,
				Err: ierr.Error(), Rows: accepted, Epoch: epoch})
			return nil
		}
		if err := c.Send(&wire.Message{Type: wire.MsgAck, StoreID: n.ID, Rows: accepted, Epoch: epoch}); err != nil {
			return err
		}
	case wire.MsgObjectFetch:
		logger.Debug("object fetch", slog.Int("ids", len(msg.IDs)))
		if err := n.sendObjects(c, n.fetchObjects(msg.IDs), epoch); err != nil {
			return err
		}
	case wire.MsgScrubQuery:
		// A non-zero BatchSize asks for a synchronous scrub pass before
		// reporting — how the tuner drives scrubbing without relying on the
		// store's own background cadence. Negative = scrub the whole holding;
		// zero = just report the current quarantine.
		if msg.BatchSize != 0 {
			n.ScrubOnce(msg.BatchSize)
		}
		rep := &wire.Message{Type: wire.MsgScrubReport, StoreID: n.ID,
			Quarantined: n.store.Quarantined(), Epoch: epoch}
		if msg.Inventory {
			// Anti-entropy inventory: every object with servable bytes here.
			// Quarantined objects are deliberately absent — reported missing,
			// the tuner refills them from a healthy replica just like a
			// replica that was never written.
			rep.IDs = n.store.IDs()
		}
		if err := c.Send(rep); err != nil {
			return err
		}
	case wire.MsgRebuildRequest:
		objs, rerr := n.rebuildSet(msg)
		if rerr != nil {
			logger.Error("rebuild set failed", slog.Any("err", rerr))
			sendErr(rerr)
			return nil
		}
		var bytes int64
		for _, o := range objs {
			bytes += int64(len(o.Raw) + len(o.Pre))
		}
		n.reg.Flight().Record(telemetry.FlightRebuild, "pipestore", n.ID, int64(len(objs)), bytes)
		logger.Debug("rebuild push", slog.Int("objects", len(objs)), slog.Int64("bytes", bytes))
		if err := n.sendObjects(c, objs, epoch); err != nil {
			return err
		}
	default:
		_ = c.SendError(n.ID, fmt.Errorf("pipestore: unexpected message %v", msg.Type))
	}
	return nil
}

// shipSpans sends every buffered span of one trace back to the Tuner. The
// collector on the other side deduplicates by span ID, so overlapping
// shipments (extraction, then delta apply, within one round's trace) are
// harmless. Untraced commands ship nothing.
func (n *Node) shipSpans(c *wire.Codec, trace telemetry.TraceID) {
	if trace == 0 {
		return
	}
	spans := n.tracer.TraceSpans(trace)
	if len(spans) == 0 {
		return
	}
	if err := c.Send(&wire.Message{Type: wire.MsgSpans, StoreID: n.ID, Trace: trace, Spans: spans}); err != nil {
		n.log.Warn("span shipment failed", slog.String("trace_id", trace.String()), slog.Any("err", err))
	}
}

// shipMetrics sends the node's registry snapshot (dense histogram buckets,
// so the aggregator's merge is lossless) tagged with the next shipment
// sequence number. Best-effort: a failed shipment is logged, never fatal —
// the next command's piggy-back carries a fresher snapshot anyway.
func (n *Node) shipMetrics(c *wire.Codec) {
	if every := n.metricsEvery; every > 0 {
		now := time.Now().UnixNano()
		last := n.lastShip.Load()
		// First-ever shipment goes immediately (the aggregator should see a
		// new store within its first command); after that, rate-limit.
		if last != 0 && now-last < int64(every) {
			return
		}
		if !n.lastShip.CompareAndSwap(last, now) {
			return
		}
	}
	seq := n.metricsSeq.Add(1)
	points := n.reg.SnapshotDense()
	if len(points) == 0 {
		return
	}
	err := c.Send(&wire.Message{
		Type:       wire.MsgMetrics,
		StoreID:    n.ID,
		Metrics:    points,
		MetricsSeq: seq,
	})
	if err != nil {
		n.log.Warn("metrics shipment failed", slog.Uint64("seq", seq), slog.Any("err", err))
	}
}

// inflate decompresses a deflate blob (photostore stores binaries
// compressed, so this is the NPE decompression stage).
func inflate(blob []byte) ([]byte, error) {
	return photostore.Inflate(blob)
}
