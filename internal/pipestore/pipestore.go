// Package pipestore implements the PipeStore node: a storage server with an
// on-board execution engine that performs near-data feature extraction for
// FT-DMP fine-tuning and near-data offline inference, exactly as §5
// describes. It stores photos (raw + compressed preprocessed binaries) in a
// photostore, runs the NPE 3-stage pipeline (load → decompress/decode →
// forward), and speaks the wire protocol to a Tuner.
package pipestore

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/nn"
	"ndpipe/internal/npe"
	"ndpipe/internal/photostore"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
	"ndpipe/internal/wire"
)

// Node is one PipeStore.
type Node struct {
	ID  string
	cfg core.ModelConfig

	backbone *nn.Network

	mu         sync.Mutex
	clf        *nn.Network
	clfSnap    nn.Snapshot // base snapshot deltas apply to
	clfVersion int
	images     []dataset.Image
	store      photostore.ObjectStore

	met nodeMetrics
}

// nodeMetrics holds the per-store instruments (labeled by store ID) plus the
// shared NPE stage histograms. Registered once in New; hot paths only touch
// the cached pointers.
type nodeMetrics struct {
	ingested       *telemetry.Counter
	featureBatches *telemetry.Counter
	deltasApplied  *telemetry.Counter
	modelVersion   *telemetry.Gauge
	extractRun     *telemetry.Histogram
	offlineInfer   *telemetry.Histogram
	stagesFT       *npe.StageMetrics
	stagesInfer    *npe.StageMetrics
}

func newNodeMetrics(id string) nodeMetrics {
	reg := telemetry.Default
	lbl := func(name string) string { return telemetry.Labeled(name, "store", id) }
	return nodeMetrics{
		ingested:       reg.Counter(lbl("pipestore_images_ingested_total")),
		featureBatches: reg.Counter(lbl("pipestore_feature_batches_total")),
		deltasApplied:  reg.Counter(lbl("pipestore_deltas_applied_total")),
		modelVersion:   reg.Gauge(lbl("pipestore_model_version")),
		extractRun:     reg.Histogram(lbl("pipestore_extract_run_seconds")),
		offlineInfer:   reg.Histogram(lbl("pipestore_offline_infer_seconds")),
		stagesFT:       npe.NewStageMetrics(reg, "finetune"),
		stagesInfer:    npe.NewStageMetrics(reg, "offline-inference"),
	}
}

// New creates a PipeStore with the deterministic backbone/classifier
// replicas for cfg, backed by an in-memory object store.
func New(id string, cfg core.ModelConfig) (*Node, error) {
	return NewWithStorage(id, cfg, photostore.New())
}

// NewWithStorage creates a PipeStore over an explicit object store — pass a
// photostore.DiskStore for a durable node whose NPE load stage performs
// real file I/O.
func NewWithStorage(id string, cfg core.ModelConfig, store photostore.ObjectStore) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("pipestore %s: nil object store", id)
	}
	n := &Node{
		ID:       id,
		cfg:      cfg,
		backbone: cfg.NewBackbone(),
		clf:      cfg.NewClassifier(),
		store:    store,
		met:      newNodeMetrics(id),
	}
	n.clfSnap = n.clf.TakeSnapshot()
	return n, nil
}

// Ingest stores a batch of uploaded photos: the raw blob and the
// preprocessed binary (the inference server's +Offload output), which the
// photostore deflate-compresses (+Comp).
func (n *Node) Ingest(imgs []dataset.Image) error {
	for _, img := range imgs {
		if len(img.Feat) != n.cfg.InputDim {
			return fmt.Errorf("pipestore %s: image %d has dim %d, want %d",
				n.ID, img.ID, len(img.Feat), n.cfg.InputDim)
		}
		n.store.Put(img.ID, dataset.Blob(img.ID, dataset.DefaultJPEGSpec()))
		if err := n.store.PutPreproc(img.ID, core.EncodeFloats(img.Feat)); err != nil {
			return err
		}
	}
	n.mu.Lock()
	n.images = append(n.images, imgs...)
	n.mu.Unlock()
	n.met.ingested.Add(int64(len(imgs)))
	return nil
}

// NumImages returns the shard size.
func (n *Node) NumImages() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.images)
}

// Storage exposes the underlying object store (read-mostly; used by tests
// and the usage accounting).
func (n *Node) Storage() photostore.ObjectStore { return n.store }

// ModelVersion returns the classifier version currently installed.
func (n *Node) ModelVersion() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clfVersion
}

// loadedImage is an item flowing through the NPE pipeline.
type loadedImage struct {
	img  dataset.Image
	blob []byte // compressed preprocessed binary
}

type decodedImage struct {
	img  dataset.Image
	feat []float64
}

// ExtractRuns splits the local shard into nrun sub-shards and, for each
// run, pushes feature batches through emit. The NPE 3-stage pipeline
// overlaps storage reads, CPU decompression/decoding and the forward pass.
func (n *Node) ExtractRuns(nrun, batch int, emit func(*wire.Message) error) error {
	if nrun < 1 {
		nrun = 1
	}
	if batch < 1 {
		batch = 128
	}
	n.mu.Lock()
	shard := append([]dataset.Image(nil), n.images...)
	n.mu.Unlock()
	if len(shard) == 0 {
		return fmt.Errorf("pipestore %s: no images to extract", n.ID)
	}
	per := len(shard) / nrun
	for r := 0; r < nrun; r++ {
		lo := r * per
		hi := lo + per
		if r == nrun-1 {
			hi = len(shard)
		}
		if err := n.extractRun(r, shard[lo:hi], batch, emit); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) extractRun(run int, shard []dataset.Image, batch int, emit func(*wire.Message) error) error {
	defer func(t0 time.Time) { n.met.extractRun.Observe(time.Since(t0).Seconds()) }(time.Now())
	var pending []decodedImage
	nBatches := (len(shard) + batch - 1) / batch
	sent := 0
	flush := func(final bool) error {
		if len(pending) == 0 {
			return nil
		}
		msg, err := n.featureBatch(run, pending, final)
		if err != nil {
			return err
		}
		pending = pending[:0]
		sent++
		n.met.featureBatches.Inc()
		return emit(msg)
	}
	err := npe.Run3StageObserved(shard,
		func(img dataset.Image) (loadedImage, error) {
			blob, err := n.store.GetPreprocCompressed(img.ID)
			if err != nil {
				return loadedImage{}, err
			}
			return loadedImage{img: img, blob: blob}, nil
		},
		func(li loadedImage) (decodedImage, error) {
			raw, err := inflate(li.blob)
			if err != nil {
				return decodedImage{}, err
			}
			feat, err := core.DecodeFloats(raw)
			if err != nil {
				return decodedImage{}, err
			}
			return decodedImage{img: li.img, feat: feat}, nil
		},
		func(di decodedImage) error {
			pending = append(pending, di)
			if len(pending) >= batch {
				return flush(sent == nBatches-1)
			}
			return nil
		},
		4,
		n.met.stagesFT,
	)
	if err != nil {
		return err
	}
	return flush(true)
}

// featureBatch runs the frozen backbone over a decoded batch and wraps the
// embeddings in a wire message.
func (n *Node) featureBatch(run int, items []decodedImage, final bool) (*wire.Message, error) {
	x := tensor.New(len(items), n.cfg.InputDim)
	labels := make([]int, len(items))
	ids := make([]uint64, len(items))
	for i, it := range items {
		copy(x.Row(i), it.feat)
		labels[i] = it.img.Class
		ids[i] = it.img.ID
	}
	feats := n.backbone.Forward(x)
	return &wire.Message{
		Type:    wire.MsgFeatures,
		StoreID: n.ID,
		Run:     run,
		Rows:    feats.Rows,
		Cols:    feats.Cols,
		X:       feats.Data,
		Labels:  labels,
		IDs:     ids,
		Final:   final,
	}, nil
}

// ApplyDelta installs a Check-N-Run classifier delta broadcast by the Tuner.
func (n *Node) ApplyDelta(blob []byte, version int) error {
	d, err := delta.Decode(blob)
	if err != nil {
		return fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	snap, err := d.Apply(n.clfSnap)
	if err != nil {
		return fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	if err := n.clf.Restore(snap); err != nil {
		return fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	n.clfSnap = snap
	n.clfVersion = version
	n.met.deltasApplied.Inc()
	n.met.modelVersion.Set(float64(version))
	return nil
}

// OfflineInfer relabels every locally stored photo with the current model,
// entirely near the data: it reads the compressed binaries, decodes them,
// and runs backbone+classifier. Only labels leave the node.
func (n *Node) OfflineInfer(batch int) (map[uint64]int, error) {
	defer func(t0 time.Time) { n.met.offlineInfer.Observe(time.Since(t0).Seconds()) }(time.Now())
	if batch < 1 {
		batch = 128
	}
	n.mu.Lock()
	shard := append([]dataset.Image(nil), n.images...)
	clf := n.clf
	n.mu.Unlock()
	out := make(map[uint64]int, len(shard))
	var pending []decodedImage
	classify := func() error {
		if len(pending) == 0 {
			return nil
		}
		x := tensor.New(len(pending), n.cfg.InputDim)
		for i, it := range pending {
			copy(x.Row(i), it.feat)
		}
		n.mu.Lock()
		logits := clf.Forward(n.backbone.Forward(x))
		n.mu.Unlock()
		preds := logits.ArgmaxRows()
		for i, it := range pending {
			out[it.img.ID] = preds[i]
		}
		pending = pending[:0]
		return nil
	}
	err := npe.Run3StageObserved(shard,
		func(img dataset.Image) (loadedImage, error) {
			blob, err := n.store.GetPreprocCompressed(img.ID)
			if err != nil {
				return loadedImage{}, err
			}
			return loadedImage{img: img, blob: blob}, nil
		},
		func(li loadedImage) (decodedImage, error) {
			raw, err := inflate(li.blob)
			if err != nil {
				return decodedImage{}, err
			}
			feat, err := core.DecodeFloats(raw)
			if err != nil {
				return decodedImage{}, err
			}
			return decodedImage{img: li.img, feat: feat}, nil
		},
		func(di decodedImage) error {
			pending = append(pending, di)
			if len(pending) >= batch {
				return classify()
			}
			return nil
		},
		4,
		n.met.stagesInfer,
	)
	if err != nil {
		return nil, err
	}
	if err := classify(); err != nil {
		return nil, err
	}
	return out, nil
}

// Serve speaks the wire protocol on conn until the peer disconnects:
// registration, then TrainRequest / ModelDelta / InferRequest commands.
func (n *Node) Serve(conn net.Conn) error {
	defer conn.Close()
	c := wire.NewCodec(conn)
	if err := c.Send(&wire.Message{Type: wire.MsgHello, StoreID: n.ID}); err != nil {
		return err
	}
	for {
		msg, err := c.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch msg.Type {
		case wire.MsgTrainRequest:
			err := n.ExtractRuns(msg.Runs, msg.BatchSize, c.Send)
			if err != nil {
				_ = c.SendError(n.ID, err)
				return err
			}
		case wire.MsgModelDelta:
			if err := n.ApplyDelta(msg.Blob, msg.ModelVersion); err != nil {
				_ = c.SendError(n.ID, err)
				return err
			}
			if err := c.Send(&wire.Message{Type: wire.MsgAck, StoreID: n.ID, ModelVersion: msg.ModelVersion}); err != nil {
				return err
			}
		case wire.MsgInferRequest:
			labels, err := n.OfflineInfer(msg.BatchSize)
			if err != nil {
				_ = c.SendError(n.ID, err)
				return err
			}
			if err := c.Send(&wire.Message{
				Type: wire.MsgLabels, StoreID: n.ID,
				LabelsOut: labels, ModelVersion: n.ModelVersion(),
			}); err != nil {
				return err
			}
		default:
			_ = c.SendError(n.ID, fmt.Errorf("pipestore: unexpected message %v", msg.Type))
		}
	}
}

// inflate decompresses a deflate blob (photostore stores binaries
// compressed, so this is the NPE decompression stage).
func inflate(blob []byte) ([]byte, error) {
	return photostore.Inflate(blob)
}
