package pipestore

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ndpipe/internal/delta"
	"ndpipe/internal/wire"
)

// serveSession starts Serve over an in-memory pipe and returns the fake
// Tuner's codec (Hello already consumed).
func serveSession(t *testing.T, n *Node) (*wire.Codec, func()) {
	t.Helper()
	tunerEnd, storeEnd := net.Pipe()
	go func() { _ = n.Serve(storeEnd) }()
	c := wire.NewCodec(tunerEnd)
	hello, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Type != wire.MsgHello || hello.StoreID != n.ID {
		t.Fatalf("hello = %+v", hello)
	}
	return c, func() { tunerEnd.Close() }
}

// recvReply reads the next command reply, skipping the span and metrics
// shipments a store piggy-backs on its replies (a real tuner absorbs those
// in its read loop).
func recvReply(t *testing.T, c *wire.Codec) *wire.Message {
	t.Helper()
	for {
		msg, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type == wire.MsgSpans || msg.Type == wire.MsgMetrics {
			continue
		}
		return msg
	}
}

// A ping is answered even while the node is busy extracting, and every
// command reply echoes the request's epoch.
func TestServeAnswersPingDuringCommandAndEchoesEpoch(t *testing.T) {
	n, _ := newStore(t, 60)
	c, done := serveSession(t, n)
	defer done()

	if err := c.Send(&wire.Message{Type: wire.MsgTrainRequest, Runs: 2, BatchSize: 16, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&wire.Message{Type: wire.MsgPing, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	var pong, finals int
	for finals < 2 {
		msg, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch msg.Type {
		case wire.MsgPong:
			if msg.Epoch != 5 {
				t.Fatalf("pong epoch %d, want 5", msg.Epoch)
			}
			pong++
		case wire.MsgFeatures:
			if msg.Epoch != 5 {
				t.Fatalf("feature batch epoch %d, want 5", msg.Epoch)
			}
			if msg.Final {
				finals++
			}
		default:
			t.Fatalf("unexpected %v", msg.Type)
		}
	}
	if pong != 1 {
		t.Fatalf("got %d pongs, want 1", pong)
	}
}

func TestServeEchoesEpochOnAckAndLabels(t *testing.T) {
	n, _ := newStore(t, 20)
	c, done := serveSession(t, n)
	defer done()

	// Delta command → epoch-tagged ack.
	clf := n.cfg.NewClassifier()
	base := clf.TakeSnapshot()
	for _, p := range clf.TrainableParams() {
		p.W.Data[0] += 0.5
	}
	d, err := delta.Diff(base, clf.TakeSnapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&wire.Message{Type: wire.MsgModelDelta, Blob: blob, ModelVersion: 1, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	ack := recvReply(t, c)
	if ack.Type != wire.MsgAck || ack.Epoch != 3 {
		t.Fatalf("ack = %+v, want epoch 3", ack)
	}

	// Inference command → epoch-tagged labels.
	if err := c.Send(&wire.Message{Type: wire.MsgInferRequest, BatchSize: 8, Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	labels := recvReply(t, c)
	if labels.Type != wire.MsgLabels || labels.Epoch != 4 {
		t.Fatalf("labels = type %v epoch %d, want labels epoch 4", labels.Type, labels.Epoch)
	}
	if len(labels.LabelsOut) != n.NumImages() {
		t.Fatalf("relabeled %d of %d", len(labels.LabelsOut), n.NumImages())
	}
}

// A rejoining store redials after its session dies and replays the Hello
// handshake — the Tuner-side rejoin contract.
func TestDialRetrySurvivesTunerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var hellos atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c := wire.NewCodec(conn)
			if msg, err := c.Recv(); err == nil && msg.Type == wire.MsgHello {
				hellos.Add(1)
			}
			// Simulate a Tuner crash/restart: drop the session immediately.
			conn.Close()
		}
	}()

	n, _ := newStore(t, 10)
	err = n.DialRetry(ln.Addr().String(), DialOptions{
		Attempts:    5,
		Backoff:     time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		Rejoin:      true,
		MaxSessions: 3,
		Seed:        42,
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	if got := hellos.Load(); got != 3 {
		t.Fatalf("tuner saw %d registrations, want 3", got)
	}
}

func TestDialRetryGivesUpAfterAttempts(t *testing.T) {
	n, _ := newStore(t, 5)
	dials := 0
	err := n.DialRetry("unused", DialOptions{
		Attempts: 3,
		Backoff:  time.Millisecond,
		Seed:     7,
		Dial: func() (net.Conn, error) {
			dials++
			return nil, net.ErrClosed
		},
	})
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if dials != 3 {
		t.Fatalf("dialed %d times, want 3", dials)
	}
}
