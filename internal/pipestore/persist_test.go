// Crash-consistency tests for the store's state.snap (S31).
package pipestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/delta"
	"ndpipe/internal/durable"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
)

func tinyStoreConfig() core.ModelConfig {
	return core.ModelConfig{Seed: 7, InputDim: 6, BackboneHidden: 8, FeatureDim: 8, HeadHidden: 8, Classes: 4}
}

// testDelta builds an applicable v1 delta: the store's initial classifier
// with every weight nudged.
func testDelta(t *testing.T, n *Node) []byte {
	t.Helper()
	from := n.ClassifierSnapshot()
	to := make(nn.Snapshot, len(from))
	for name, m := range from {
		c := m.Clone()
		for i := range c.Data {
			c.Data[i] += 0.25
		}
		to[name] = c
	}
	d, err := delta.Diff(from, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func encodeSnap(t *testing.T, s nn.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nn.EncodeSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashStorePersistRoundTrip: a delta applied with a state dir open is
// durable — a fresh node over the same dir recovers the exact version and
// byte-identical classifier.
func TestCrashStorePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n1, err := New("ps-wal", tinyStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := n1.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Cold || rec.Version != 0 {
		t.Fatalf("fresh dir must recover cold at v0, got %+v", rec)
	}
	if err := n1.ApplyDelta(testDelta(t, n1), 1); err != nil {
		t.Fatal(err)
	}
	want := encodeSnap(t, n1.ClassifierSnapshot())

	n2, err := New("ps-wal", tinyStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := n2.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Cold || rec2.Version != 1 {
		t.Fatalf("restart must recover warm at v1, got %+v", rec2)
	}
	if n2.ModelVersion() != 1 {
		t.Fatalf("restarted node at v%d, want 1", n2.ModelVersion())
	}
	if got := encodeSnap(t, n2.ClassifierSnapshot()); !bytes.Equal(got, want) {
		t.Fatal("recovered classifier is not byte-identical")
	}
}

// TestCrashStoreCorruptStateFallsBackCold: every single-byte corruption of
// state.snap must degrade to a counted cold start (catch-up repairs it) —
// never an error, panic, or silent acceptance of damaged weights.
func TestCrashStoreCorruptStateFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	n1, err := New("ps-corrupt", tinyStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if err := n1.ApplyDelta(testDelta(t, n1), 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "state.snap")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := telemetry.Default.Counter("pipestore_state_corrupt_total")
	// Corrupting any one byte in a sample across the file must cold-start.
	for i := 0; i < len(whole); i += 17 {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		before := corrupt.Value()
		n, err := New("ps-corrupt", tinyStoreConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := n.OpenState(dir)
		if err != nil {
			t.Fatalf("byte %d: corruption must not be fatal: %v", i, err)
		}
		if !rec.Cold || rec.Version != 0 || n.ModelVersion() != 0 {
			t.Fatalf("byte %d: corrupt state accepted: %+v v%d", i, rec, n.ModelVersion())
		}
		if corrupt.Value() != before+1 {
			t.Fatalf("byte %d: pipestore_state_corrupt_total not incremented", i)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("byte %d: damaged state.snap not removed", i)
		}
	}
	// A truncated file behaves the same way.
	if err := os.WriteFile(path, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := New("ps-corrupt", tinyStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := n.OpenState(dir)
	if err != nil || !rec.Cold {
		t.Fatalf("truncated state: rec=%+v err=%v", rec, err)
	}
}

// TestCrashStorePersistFailureRollsBack is the persist-before-ack rule: a
// delta whose state write crashes must be reported as an error, and the
// in-memory model must roll back to agree with what a restart would see.
func TestCrashStorePersistFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	faults, err := durable.ParseFaults("seed=9;crash:before-rename")
	if err != nil {
		t.Fatal(err)
	}
	n, err := New("ps-rollback", tinyStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenStateFaults(dir, faults); err != nil {
		t.Fatal(err)
	}
	before := encodeSnap(t, n.ClassifierSnapshot())
	if err := n.ApplyDelta(testDelta(t, n), 1); err == nil {
		t.Fatal("delta whose persist crashes must not be accepted")
	}
	if n.ModelVersion() != 0 {
		t.Fatalf("failed persist left version at %d, want rollback to 0", n.ModelVersion())
	}
	if got := encodeSnap(t, n.ClassifierSnapshot()); !bytes.Equal(got, before) {
		t.Fatal("failed persist left the in-memory model ahead of disk")
	}
	// The crash left no durable state: a restart is a cold start.
	n2, err := New("ps-rollback", tinyStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := n2.OpenState(dir)
	if err != nil || !rec.Cold {
		t.Fatalf("restart after crashed persist: rec=%+v err=%v", rec, err)
	}
}
