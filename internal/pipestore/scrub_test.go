package pipestore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/durable"
	"ndpipe/internal/photostore"
	"ndpipe/internal/wire"
)

// diskStore builds a disk-backed node holding the whole world, returning the
// photo directory so tests can corrupt at-rest object files directly.
func diskStore(t *testing.T, id string, images int) (*Node, *dataset.World, string) {
	t.Helper()
	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(31)
	wcfg.InitialImages = images
	world := dataset.NewWorld(wcfg)
	dir := filepath.Join(t.TempDir(), "photos")
	photos, err := photostore.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewWithStorage(id, cfg, photos)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(world.Images()); err != nil {
		t.Fatal(err)
	}
	return n, world, dir
}

func flipRawByte(t *testing.T, dir string, id uint64) {
	t.Helper()
	path := filepath.Join(dir, "raw", fmt.Sprintf("%d", id))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x80
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A scrub pass detects an at-rest bit-flip, quarantines the object, and —
// with a peer replica wired as the repair source — heals it in the same
// pass: the re-read copy matches the peer's byte for byte.
func TestScrubQuarantinesAndRepairsFromPeer(t *testing.T) {
	a, world, dir := diskStore(t, "scrub-a", 60)
	b, _ := newStore(t, 60) // same seed/world shape: holds healthy copies
	id := world.Images()[0].ID
	flipRawByte(t, dir, id)
	a.SetReplicaSource(PeerSource(b))

	checked, corrupt := a.ScrubOnce(0)
	if checked != 60 || corrupt != 1 {
		t.Fatalf("checked=%d corrupt=%d, want 60/1", checked, corrupt)
	}
	if q := a.Storage().Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine not lifted after repair: %v", q)
	}
	got, err := a.Storage().GetRaw(id)
	if err != nil {
		t.Fatalf("repaired object unreadable: %v", err)
	}
	want, err := b.Storage().GetRaw(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("repaired object differs from the peer's copy")
	}
}

// Without a replica source, scrub still quarantines — and a quarantined
// object is never served until something repairs it.
func TestScrubWithoutSourceQuarantinesOnly(t *testing.T) {
	a, world, dir := diskStore(t, "scrub-b", 40)
	id := world.Images()[3].ID
	flipRawByte(t, dir, id)

	_, corrupt := a.ScrubOnce(0)
	if corrupt != 1 {
		t.Fatalf("corrupt=%d, want 1", corrupt)
	}
	if q := a.Storage().Quarantined(); len(q) != 1 || q[0] != id {
		t.Fatalf("quarantined = %v, want [%d]", q, id)
	}
	if _, err := a.Storage().GetRaw(id); err == nil {
		t.Fatal("quarantined object served")
	}
}

// Bounded-rate scrubbing covers the whole store across successive ticks:
// the cursor resumes and wraps instead of rescanning the same prefix.
func TestScrubCursorResumesAndWraps(t *testing.T) {
	n, _ := newStore(t, 50)
	seen := 0
	for i := 0; i < 5; i++ {
		checked, _ := n.ScrubOnce(10)
		seen += checked
	}
	if seen != 50 {
		t.Fatalf("5 ticks of 10 checked %d objects, want 50", seen)
	}
	// Next tick wraps to the beginning rather than stalling at the end.
	if checked, _ := n.ScrubOnce(10); checked != 10 {
		t.Fatalf("post-wrap tick checked %d, want 10", checked)
	}
}

// IngestReplica rejects payloads whose checksums do not match — a flip
// anywhere between the producer and here must never reach storage.
func TestIngestReplicaRejectsCorruptPayload(t *testing.T) {
	n, world := newStore(t, 20)
	fresh := dataset.NewWorld(func() dataset.Config {
		c := dataset.DefaultConfig(99)
		c.InitialImages = 1
		return c
	}())
	img := fresh.Images()[0]
	img.ID = world.Images()[19].ID + 1000 // not present locally
	od := wire.ObjectData{
		ID:    img.ID,
		Label: img.Class,
		Day:   img.Day,
		Raw:   dataset.Blob(img.ID, dataset.DefaultJPEGSpec()),
		Pre:   core.AppendFloats(nil, img.Feat),
	}
	od.RawCRC = durable.Checksum(od.Raw) ^ 1 // corrupt on purpose
	od.PreCRC = durable.Checksum(od.Pre)
	accepted, err := n.IngestReplica([]wire.ObjectData{od})
	if accepted != 0 || err == nil {
		t.Fatalf("corrupt replica accepted: accepted=%d err=%v", accepted, err)
	}
	if _, gerr := n.Storage().GetRaw(od.ID); gerr == nil {
		t.Fatal("corrupt replica reached storage")
	}

	// The same payload with honest checksums is accepted and extractable.
	od.RawCRC = durable.Checksum(od.Raw)
	accepted, err = n.IngestReplica([]wire.ObjectData{od})
	if accepted != 1 || err != nil {
		t.Fatalf("healthy replica rejected: accepted=%d err=%v", accepted, err)
	}
	if _, gerr := n.Storage().GetRaw(od.ID); gerr != nil {
		t.Fatalf("accepted replica unreadable: %v", gerr)
	}
}
