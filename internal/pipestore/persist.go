// PipeStore crash consistency (S31). A store's recoverable training state
// is one pair: the classifier snapshot and its version. It lives in a
// single checksummed file, state.snap, atomically replaced after every
// applied delta — so a restarted store re-registers at its real version
// (Hello.ModelVersion) and receives only the catch-up for the rounds it
// missed, instead of the full composite a cold store needs.
//
// Unlike the tuner's chain root, state.snap is never the only copy of
// anything: a damaged file degrades to a cold start (version 0), which the
// catch-up path repairs. Corruption is therefore logged and counted, never
// fatal.
package pipestore

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"ndpipe/internal/durable"
	"ndpipe/internal/nn"
	"ndpipe/internal/telemetry"
)

// psState is the checksummed payload of state.snap.
type psState struct {
	Version int
	Model   []byte // nn.EncodeSnapshot of the classifier at Version
}

// StoreRecovery describes what OpenState found.
type StoreRecovery struct {
	Version int           // recovered model version (0 = cold)
	Cold    bool          // no usable state.snap (fresh dir or damaged file)
	Elapsed time.Duration // wall time of the recovery
}

// OpenState attaches the store to a state directory and, if a valid
// state.snap exists, restores the persisted classifier and version. Call
// before Serve so the Hello carries the recovered version.
func (n *Node) OpenState(dir string) (StoreRecovery, error) {
	return n.OpenStateFaults(dir, nil)
}

// OpenStateFaults is OpenState with a disk-fault schedule (crash tests).
func (n *Node) OpenStateFaults(dir string, faults *durable.Faults) (StoreRecovery, error) {
	start := time.Now()
	var rec StoreRecovery
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return rec, fmt.Errorf("pipestore %s: state dir: %w", n.ID, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stateDir != "" {
		return rec, fmt.Errorf("pipestore %s: state already open at %s", n.ID, n.stateDir)
	}
	n.stateDir = dir
	n.stateFaults = faults

	path := n.statePath()
	payload, err := durable.ReadFileChecksummed(path)
	if errors.Is(err, os.ErrNotExist) {
		rec.Cold = true
		rec.Elapsed = time.Since(start)
		return rec, nil
	}
	var st psState
	if err == nil {
		err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&st)
	}
	var snap nn.Snapshot
	if err == nil {
		snap, err = nn.DecodeSnapshot(bytes.NewReader(st.Model))
	}
	if err == nil {
		err = n.clf.Restore(snap)
	}
	if err != nil {
		// Damaged state: cold-start and let catch-up repair us. Remove the
		// file so the next persist is a fresh write, not a doomed re-read.
		n.log.Warn("state.snap unusable; cold start", slog.Any("err", err))
		telemetry.Default.Counter("pipestore_state_corrupt_total").Inc()
		_ = os.Remove(path)
		rec.Cold = true
		rec.Elapsed = time.Since(start)
		return rec, nil
	}
	n.clfSnap = snap
	n.clfVersion = st.Version
	n.met.modelVersion.Set(float64(st.Version))
	rec.Version = st.Version
	rec.Elapsed = time.Since(start)
	recoverSeconds().Observe(rec.Elapsed.Seconds())
	n.log.Info("state recovered",
		slog.String("dir", dir),
		slog.Int("version", st.Version),
		slog.Duration("elapsed", rec.Elapsed))
	return rec, nil
}

func recoverSeconds() *telemetry.Histogram {
	return telemetry.Default.Histogram(telemetry.Labeled("durable_recover_seconds", "component", "pipestore"))
}

// statePath is the snapshot file location (caller holds n.mu).
func (n *Node) statePath() string { return filepath.Join(n.stateDir, "state.snap") }

// persistStateLocked atomically replaces state.snap with the current
// classifier snapshot + version. Caller holds n.mu. A persistence failure
// is returned: an unpersistable store must not ack a delta it would forget.
func (n *Node) persistStateLocked() error {
	if n.stateDir == "" {
		return nil
	}
	var model bytes.Buffer
	if err := nn.EncodeSnapshot(&model, n.clfSnap); err != nil {
		return fmt.Errorf("pipestore %s: encoding state: %w", n.ID, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&psState{Version: n.clfVersion, Model: model.Bytes()}); err != nil {
		return fmt.Errorf("pipestore %s: encoding state: %w", n.ID, err)
	}
	if err := n.stateFaults.WriteFileChecksummed(n.statePath(), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("pipestore %s: persisting state: %w", n.ID, err)
	}
	return nil
}
