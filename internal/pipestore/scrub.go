// Photo durability on the store side (S36): the background scrubber that
// walks local objects verifying their at-rest checksums, the read-repair
// path that refills quarantined objects from a healthy replica, and the
// ring-routed extraction / object-transfer handlers behind replicated
// placement. The placement math itself lives in internal/placement; this
// file is what a store does with it.
package pipestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/durable"
	"ndpipe/internal/photostore"
	"ndpipe/internal/placement"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/wire"
)

// objectChunk bounds how many ObjectData payloads ride in one MsgObjects
// envelope. Raw photos run tens of KB, so 64 keeps a chunk well under the
// wire guard while amortizing the per-message gob overhead.
const objectChunk = 64

// ReplicaSource answers read-repair fetches with a healthy copy of an
// object. In-process fleets (tests, experiments) wire stores to their
// replicas directly via PeerSource; over the wire the tuner brokers repair
// instead (MsgScrubQuery → MsgObjectFetch → MsgObjectPut), because stores
// never talk to each other.
type ReplicaSource interface {
	FetchObject(id uint64) (wire.ObjectData, error)
}

// ReplicaSourceFunc adapts a function to ReplicaSource.
type ReplicaSourceFunc func(id uint64) (wire.ObjectData, error)

// FetchObject implements ReplicaSource.
func (f ReplicaSourceFunc) FetchObject(id uint64) (wire.ObjectData, error) { return f(id) }

// SetReplicaSource wires the node's read-repair path to a source of healthy
// replicas. With a source set, every scrub pass ends by re-fetching and
// re-verifying whatever is quarantined.
func (n *Node) SetReplicaSource(src ReplicaSource) {
	n.mu.Lock()
	n.replicaSrc = src
	n.mu.Unlock()
}

// PeerSource builds a ReplicaSource over in-process peer nodes: a fetch
// returns the first healthy copy any peer can serve. Peers whose own copy
// is quarantined simply miss, so a fetch succeeds as long as one replica
// anywhere is intact.
func PeerSource(peers ...*Node) ReplicaSource {
	return ReplicaSourceFunc(func(id uint64) (wire.ObjectData, error) {
		var lastErr error
		for _, p := range peers {
			od, err := p.ObjectData(id)
			if err == nil {
				return od, nil
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("pipestore: no replica source holds object %d", id)
		}
		return wire.ObjectData{}, lastErr
	})
}

// ObjectData packages a local object for the wire: both parts read (and
// therefore CRC-verified) from the store, with fresh checksums the receiver
// re-verifies end to end. Errors out when the object is missing or
// quarantined here — the caller should try another replica.
func (n *Node) ObjectData(id uint64) (wire.ObjectData, error) {
	raw, err := n.store.GetRaw(id)
	if err != nil {
		return wire.ObjectData{}, err
	}
	pre, err := n.store.GetPreproc(id)
	if err != nil {
		return wire.ObjectData{}, err
	}
	od := wire.ObjectData{
		ID:     id,
		Raw:    raw,
		Pre:    pre,
		RawCRC: durable.Checksum(raw),
		PreCRC: durable.Checksum(pre),
	}
	n.mu.Lock()
	if idx, ok := n.imageIdx[id]; ok {
		od.Label = n.images[idx].Class
		od.Day = n.images[idx].Day
	}
	n.mu.Unlock()
	return od, nil
}

// IngestReplica stores replicated or repaired objects pushed by a peer (via
// the tuner). Both checksums are verified before anything touches storage —
// a flip anywhere between the producer's disk and here is rejected, counted,
// and never persisted. A successfully stored object that was quarantined
// locally is re-verified and released from quarantine: this is the repair
// path. Returns how many objects were accepted; the error describes the
// first rejection, if any.
func (n *Node) IngestReplica(objs []wire.ObjectData) (int, error) {
	accepted := 0
	var firstErr error
	reject := func(err error) {
		n.met.replicaRejects.Inc()
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, o := range objs {
		if durable.Checksum(o.Raw) != o.RawCRC {
			reject(fmt.Errorf("pipestore %s: object %d raw CRC mismatch", n.ID, o.ID))
			continue
		}
		if durable.Checksum(o.Pre) != o.PreCRC {
			reject(fmt.Errorf("pipestore %s: object %d preproc CRC mismatch", n.ID, o.ID))
			continue
		}
		feat, err := core.DecodeFloats(o.Pre)
		if err != nil {
			reject(fmt.Errorf("pipestore %s: object %d preproc undecodable: %w", n.ID, o.ID, err))
			continue
		}
		if len(feat) != n.cfg.InputDim {
			reject(fmt.Errorf("pipestore %s: object %d has dim %d, want %d",
				n.ID, o.ID, len(feat), n.cfg.InputDim))
			continue
		}
		n.store.Put(o.ID, o.Raw)
		if err := n.store.PutPreproc(o.ID, o.Pre); err != nil {
			reject(err)
			continue
		}
		// If this object was quarantined here, the re-put is its repair:
		// verify the fresh copy end to end before lifting the flag.
		if _, err := n.store.Verify(o.ID); err != nil {
			reject(fmt.Errorf("pipestore %s: object %d unverifiable after put: %w", n.ID, o.ID, err))
			continue
		}
		n.store.ClearQuarantine(o.ID)
		img := dataset.Image{ID: o.ID, Class: o.Label, Day: o.Day, Feat: feat, Raw: o.Raw}
		n.mu.Lock()
		if idx, ok := n.imageIdx[o.ID]; ok {
			n.images[idx] = img
		} else {
			n.imageIdx[o.ID] = len(n.images)
			n.images = append(n.images, img)
		}
		n.mu.Unlock()
		n.met.replicaIngests.Inc()
		accepted++
	}
	return accepted, firstErr
}

// ScrubOnce verifies up to limit objects (≤0 = all), resuming where the
// previous pass left off and wrapping, so a bounded per-tick rate still
// covers the whole store over successive ticks. Corrupt objects are
// quarantined by Verify itself; when a ReplicaSource is wired the pass ends
// with a repair sweep over everything quarantined. Returns objects checked
// and corruptions found this pass.
func (n *Node) ScrubOnce(limit int) (checked, corrupt int) {
	n.scrubMu.Lock()
	defer n.scrubMu.Unlock()
	ids := n.store.IDs()
	if len(ids) > 0 {
		if limit <= 0 || limit > len(ids) {
			limit = len(ids)
		}
		n.mu.Lock()
		cursor := n.scrubCursor
		n.mu.Unlock()
		start := sort.Search(len(ids), func(i int) bool { return ids[i] > cursor })
		var bytes int64
		for k := 0; k < limit; k++ {
			id := ids[(start+k)%len(ids)]
			nb, err := n.store.Verify(id)
			bytes += nb
			checked++
			if errors.Is(err, photostore.ErrCorrupt) {
				corrupt++
				n.reg.Flight().Record(telemetry.FlightQuarantine, "pipestore", n.ID, int64(id), 0)
			}
			cursor = id
		}
		n.mu.Lock()
		n.scrubCursor = cursor
		n.mu.Unlock()
		n.met.scrubObjects.Add(int64(checked))
		n.met.scrubCorrupt.Add(int64(corrupt))
		n.met.scrubBytes.Add(bytes)
		n.reg.Flight().Record(telemetry.FlightScrub, "pipestore", n.ID, int64(checked), int64(corrupt))
	}
	n.RepairQuarantined()
	return checked, corrupt
}

// RepairQuarantined read-repairs every quarantined object from the wired
// ReplicaSource: fetch a healthy copy, re-ingest it (CRC-verified), which
// re-verifies and lifts the quarantine. No-op without a source — over the
// wire the tuner drives the same repair via MsgObjectPut instead.
func (n *Node) RepairQuarantined() (repaired, failed int) {
	n.mu.Lock()
	src := n.replicaSrc
	n.mu.Unlock()
	if src == nil {
		return 0, 0
	}
	for _, id := range n.store.Quarantined() {
		od, err := src.FetchObject(id)
		if err == nil {
			_, err = n.IngestReplica([]wire.ObjectData{od})
		}
		if err != nil {
			failed++
			n.met.repairFails.Inc()
			n.reg.Flight().Record(telemetry.FlightRepair, "pipestore", n.ID, int64(id), 0)
			n.log.Warn("read-repair failed", "id", id, "err", err)
			continue
		}
		repaired++
		n.met.repairs.Inc()
		n.reg.Flight().Record(telemetry.FlightRepair, "pipestore", n.ID, int64(id), 1)
	}
	return repaired, failed
}

// StartScrub runs ScrubOnce(perTick) every interval until the returned stop
// function is called. Bounding the per-tick batch is what keeps scrubbing
// off the round's critical path: the pass budget is perTick Verify reads,
// not the whole store.
func (n *Node) StartScrub(interval time.Duration, perTick int) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n.ScrubOnce(perTick)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// extractOwned is the ring-routed MsgTrainRequest path: extract exactly the
// photos this store owns under the request's ring and live set — owner =
// first live replica — partitioned across runs [FromRun, Runs). On a
// re-sent (degraded) request, PrevLive names the live set the original
// request carried, and this store covers only photos it owns now but did
// not own then: the dead store's orphans, for the runs not yet trained.
// Missing or quarantined objects are skipped rather than failing the round;
// a replica elsewhere serves them.
func (n *Node) extractOwned(tc telemetry.SpanContext, msg *wire.Message, emit func(*wire.Message) error) error {
	nrun, batch := msg.Runs, msg.BatchSize
	if nrun < 1 {
		nrun = 1
	}
	if batch < 1 {
		batch = 128
	}
	ring, err := placement.New(msg.RingStores, msg.Replication)
	if err != nil {
		return fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	live := placement.LiveSet(msg.LiveStores)
	var prev func(string) bool
	if len(msg.PrevLive) > 0 {
		prev = placement.LiveSet(msg.PrevLive)
	}
	shard := n.ownedShard(ring, live, prev)
	fromRun := msg.FromRun
	if fromRun < 0 || fromRun >= nrun {
		fromRun = 0
	}
	return n.extractShardTraced(tc, shard, fromRun, nrun, batch, emit, true)
}

// ownedShard snapshots the local images this store owns under (ring, live),
// minus anything it already owned under prev (nil = no previous view).
func (n *Node) ownedShard(ring *placement.Ring, live, prev func(string) bool) []dataset.Image {
	n.mu.Lock()
	defer n.mu.Unlock()
	shard := make([]dataset.Image, 0, len(n.images))
	for _, img := range n.images {
		owner, ok := ring.Owner(img.ID, live)
		if !ok || owner != n.ID {
			continue
		}
		if prev != nil {
			if po, pok := ring.Owner(img.ID, prev); pok && po == n.ID {
				continue // owned then too: the original request already covers it
			}
		}
		shard = append(shard, img)
	}
	return shard
}

// offlineInferOwned is the ring-routed MsgInferRequest path: relabel only
// the photos this store owns, so replicated fleets label each photo exactly
// once instead of R times.
func (n *Node) offlineInferOwned(tc telemetry.SpanContext, msg *wire.Message) (map[uint64]int, error) {
	ring, err := placement.New(msg.RingStores, msg.Replication)
	if err != nil {
		return nil, fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	shard := n.ownedShard(ring, placement.LiveSet(msg.LiveStores), nil)
	return n.offlineInferShard(tc, shard, msg.BatchSize)
}

// rebuildSet computes the objects this store must push after msg.StoreID
// (the dead member) left the ring: for every local photo the dead store
// replicated, the first live survivor in the old walk order is the
// designated pusher — exactly one survivor pushes each object — and the
// targets are the members that gained the object on the survivor ring.
// Quarantined local copies are skipped (another survivor repairs us first).
func (n *Node) rebuildSet(msg *wire.Message) ([]wire.ObjectData, error) {
	dead := msg.StoreID
	oldRing, err := placement.New(msg.RingStores, msg.Replication)
	if err != nil {
		return nil, fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	survivors := placement.Without(msg.RingStores, dead)
	if len(survivors) == 0 {
		return nil, fmt.Errorf("pipestore %s: rebuild with no survivors", n.ID)
	}
	newRing, err := placement.New(survivors, msg.Replication)
	if err != nil {
		return nil, fmt.Errorf("pipestore %s: %w", n.ID, err)
	}
	live := placement.LiveSet(msg.LiveStores)
	n.mu.Lock()
	ids := make([]uint64, len(n.images))
	for i, img := range n.images {
		ids[i] = img.ID
	}
	n.mu.Unlock()
	var out []wire.ObjectData
	for _, id := range ids {
		oldReps := oldRing.Replicas(id)
		held := false
		pusher := ""
		for _, m := range oldReps {
			if m == dead {
				held = true
			} else if pusher == "" && live(m) {
				pusher = m
			}
		}
		if !held || pusher != n.ID {
			continue
		}
		for _, t := range newRing.Replicas(id) {
			if contains(oldReps, t) {
				continue // already holds it
			}
			od, err := n.ObjectData(id)
			if err != nil {
				n.log.Warn("rebuild skip: local copy unreadable", "id", id, "err", err)
				break
			}
			od.Dest = t
			out = append(out, od)
		}
	}
	return out, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// sendObjects streams ObjectData payloads back in bounded MsgObjects
// chunks, always closing with a Final message — even an empty set owes the
// requester its terminator.
func (n *Node) sendObjects(c *wire.Codec, objs []wire.ObjectData, epoch int) error {
	for len(objs) > objectChunk {
		if err := c.Send(&wire.Message{Type: wire.MsgObjects, StoreID: n.ID,
			Objects: objs[:objectChunk], Epoch: epoch}); err != nil {
			return err
		}
		objs = objs[objectChunk:]
	}
	return c.Send(&wire.Message{Type: wire.MsgObjects, StoreID: n.ID,
		Objects: objs, Final: true, Epoch: epoch})
}

// fetchObjects collects local copies of the requested IDs; unreadable
// (missing or quarantined) objects are simply absent from the reply — the
// requester falls back to another replica.
func (n *Node) fetchObjects(ids []uint64) []wire.ObjectData {
	out := make([]wire.ObjectData, 0, len(ids))
	for _, id := range ids {
		od, err := n.ObjectData(id)
		if err != nil {
			continue
		}
		out = append(out, od)
	}
	return out
}
