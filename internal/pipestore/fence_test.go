package pipestore

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ndpipe/internal/wire"
)

// serveFence runs Serve on a fresh connection pair and returns the
// fake-tuner side codec (after absorbing the store's Hello).
func serveFence(t *testing.T, n *Node) (*wire.Codec, func()) {
	t.Helper()
	a, b := net.Pipe()
	go func() { _ = n.Serve(b) }()
	c := wire.NewCodec(a)
	hello, err := c.Recv()
	if err != nil || hello.Type != wire.MsgHello {
		t.Fatalf("hello: %v %v", hello, err)
	}
	return c, func() { a.Close(); b.Close() }
}

// TestFenceRejectsStaleLeader: once a store has seen leader epoch E, any
// message stamped with a lower non-zero epoch is refused with an error and
// never executed — here a MsgModelDelta whose blob is garbage, which would
// fail loudly if it ever reached applyDelta. The fence persists across
// sessions: the stale leader reconnecting stays fenced.
func TestFenceRejectsStaleLeader(t *testing.T) {
	n, _ := newStore(t, 5)

	// Session 1: the new leader (epoch 2) raises the fence with a ping.
	c1, done1 := serveFence(t, n)
	if err := c1.Send(&wire.Message{Type: wire.MsgPing, Epoch: 1, LeaderEpoch: 2}); err != nil {
		t.Fatal(err)
	}
	if pong, err := c1.Recv(); err != nil || pong.Type != wire.MsgPong {
		t.Fatalf("pong: %v %v", pong, err)
	}
	done1()

	// Session 2: the deposed leader (epoch 1) replays a delta.
	c2, done2 := serveFence(t, n)
	defer done2()
	before := n.ModelVersion()
	if err := c2.Send(&wire.Message{Type: wire.MsgModelDelta, LeaderEpoch: 1,
		Blob: []byte("stale-garbage"), ModelVersion: before + 1}); err != nil {
		t.Fatal(err)
	}
	reply, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.MsgError || !strings.Contains(reply.Err, "fenced") {
		t.Fatalf("stale delta got %v (%q), want fenced MsgError", reply.Type, reply.Err)
	}
	if got := n.ModelVersion(); got != before {
		t.Fatalf("stale leader advanced the model: v%d → v%d", before, got)
	}

	// Stale pings are refused too: the deposed leader must not read this
	// store as a live follower.
	if err := c2.Send(&wire.Message{Type: wire.MsgPing, LeaderEpoch: 1}); err != nil {
		t.Fatal(err)
	}
	if reply, err = c2.Recv(); err != nil || reply.Type != wire.MsgError {
		t.Fatalf("stale ping got %v (err %v), want fenced MsgError", reply, err)
	}

	// Unfenced legacy traffic (epoch 0) still passes.
	if err := c2.Send(&wire.Message{Type: wire.MsgPing}); err != nil {
		t.Fatal(err)
	}
	if reply, err = c2.Recv(); err != nil || reply.Type != wire.MsgPong {
		t.Fatalf("legacy ping got %v (err %v), want pong", reply, err)
	}
}

// TestDialBackoffLadderPersistsAndResets pins the reconnect-backoff
// contract: the ladder escalates across short-lived sessions (a
// crash-looping tuner is not hammered at the base rate) and resets after a
// session that stayed healthy for HealthyAfter (a store that flaps hours
// apart does not pay the accumulated maximum).
func TestDialBackoffLadderPersistsAndResets(t *testing.T) {
	n, _ := newStore(t, 5)

	// Sessions 1, 2 and 4 die instantly; session 3 outlives HealthyAfter.
	// The dial gaps should read: immediate, ~base, ~2×base (ladder
	// persisting and escalating across the short sessions), then — after
	// the healthy session resets the ladder — immediate again.
	var dialTimes []time.Time
	var sessions atomic.Int32
	dial := func(string) (net.Conn, error) {
		dialTimes = append(dialTimes, time.Now())
		a, b := net.Pipe()
		go func(slow bool) {
			c := wire.NewCodec(a)
			_, _ = c.Recv() // hello
			if slow {
				time.Sleep(60 * time.Millisecond) // outlives HealthyAfter
			}
			a.Close()
		}(sessions.Add(1) == 3)
		return b, nil
	}
	err := n.DialRetryMulti([]string{"x"}, DialOptions{
		Attempts: 3, Backoff: 40 * time.Millisecond, BackoffCap: time.Second,
		HealthyAfter: 50 * time.Millisecond, Rejoin: true, MaxSessions: 4, Seed: 11,
		DialAddr: dial,
	})
	if err != nil {
		t.Fatalf("DialRetryMulti: %v", err)
	}
	if len(dialTimes) != 4 {
		t.Fatalf("dialed %d times, want 4", len(dialTimes))
	}
	gap12 := dialTimes[1].Sub(dialTimes[0])
	gap23 := dialTimes[2].Sub(dialTimes[1])
	gap34 := dialTimes[3].Sub(dialTimes[2])
	if gap12 < 15*time.Millisecond {
		t.Fatalf("second dial came after %v: ladder did not persist across sessions", gap12)
	}
	if gap23 < 35*time.Millisecond {
		t.Fatalf("third dial came after %v: ladder did not escalate", gap23)
	}
	// Session 3 itself takes ~60ms; a reset ladder adds no backoff on top.
	// Without the reset this gap would carry a ≥80ms third-rung backoff.
	if extra := gap34 - 60*time.Millisecond; extra > 35*time.Millisecond {
		t.Fatalf("dial after healthy session waited %v beyond the session: ladder did not reset", extra)
	}
}

// TestDialRetryMultiFailsOver: with the primary address dead, the dialer
// rotates to the standby address within the same dial pass.
func TestDialRetryMultiFailsOver(t *testing.T) {
	n, _ := newStore(t, 5)
	var tried []string
	err := n.DialRetryMulti([]string{"dead:1", "alive:2"}, DialOptions{
		Attempts: 4, Backoff: time.Millisecond, Seed: 5,
		DialAddr: func(addr string) (net.Conn, error) {
			tried = append(tried, addr)
			if addr == "dead:1" {
				return nil, net.ErrClosed
			}
			a, b := net.Pipe()
			go func() {
				c := wire.NewCodec(a)
				_, _ = c.Recv()
				a.Close()
			}()
			return b, nil
		},
	})
	if err != nil {
		t.Fatalf("DialRetryMulti: %v", err)
	}
	if len(tried) != 2 || tried[0] != "dead:1" || tried[1] != "alive:2" {
		t.Fatalf("tried %v, want [dead:1 alive:2]", tried)
	}
}
