package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Log frame layout, little-endian:
//
//	u32 len(payload) | u32 crc32c(payload) | payload
//
// A record is valid only if its full frame is present and the checksum
// verifies. Zero-length records are illegal by construction, so a
// preallocated or zero-filled tail (len=0, crc=0) never parses as a valid
// empty record — it is a torn tail and gets truncated.
const (
	frameHeaderLen = 8
	// maxRecord bounds a single payload; a length prefix beyond it is
	// treated as tail corruption, not an allocation request.
	maxRecord = 1 << 28
)

// RecoverStats describes what Open found on disk.
type RecoverStats struct {
	Records   int   // records that verified and were replayed
	TornBytes int64 // bytes truncated from a torn/corrupt tail
}

// Log is a CRC32C-framed append-only record log. One writer at a time;
// Append is not internally locked because every caller (tuner, tests)
// already serialises writes under its own mutex.
type Log struct {
	path   string
	f      *os.File
	faults *Faults
	size   int64
	broken bool // a torn append happened; the file tail is suspect
}

// Open opens (creating if absent) the log at path, verifies every record,
// calls replay for each valid payload in order, and truncates the first
// torn or corrupt frame and everything after it. A replay error aborts the
// open — that is state corruption above the framing layer and the caller
// must decide, not the log.
//
// faults may be nil. The returned log is positioned for Append.
func Open(path string, faults *Faults, replay func(payload []byte) error) (*Log, RecoverStats, error) {
	var stats RecoverStats
	created := false
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		created = true
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("durable: open log: %w", err)
	}
	if created {
		// Make the log's existence itself durable.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, stats, err
		}
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("durable: read log: %w", err)
	}

	valid := int64(0) // offset of the end of the last valid record
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			break // torn header
		}
		n := int(getU32(rest))
		want := getU32(rest[4:])
		if n == 0 || n > maxRecord || len(rest) < frameHeaderLen+n {
			break // zero-filled tail, hostile length, or torn payload
		}
		payload := rest[frameHeaderLen : frameHeaderLen+n]
		if Checksum(payload) != want {
			break // bit rot or torn-then-overwritten frame
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("durable: replay record %d: %w", stats.Records, err)
			}
		}
		stats.Records++
		off += frameHeaderLen + n
		valid = int64(off)
	}
	metrics().replayed.Add(int64(stats.Records))

	if torn := int64(len(data)) - valid; torn > 0 {
		stats.TornBytes = torn
		metrics().tornTails.Inc()
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("durable: fsync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("durable: seek log end: %w", err)
	}
	return &Log{path: path, f: f, faults: faults, size: valid}, stats, nil
}

// Append frames payload, writes it in a single write call, and fsyncs.
// When Append returns nil the record is durable. After a failed append the
// log is marked broken: the on-disk tail may be torn, and further appends
// are refused — reopen (which truncates the tail) to resume.
func (l *Log) Append(payload []byte) error {
	if l.broken {
		return fmt.Errorf("durable: log %s has a torn tail; reopen to recover", l.path)
	}
	if len(payload) == 0 {
		return fmt.Errorf("durable: empty record")
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("durable: record %d bytes exceeds max %d", len(payload), maxRecord)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	putU32(frame, uint32(len(payload)))
	putU32(frame[4:], Checksum(payload))
	copy(frame[frameHeaderLen:], payload)

	if err := l.faults.fileWrite(l.f, frame); err != nil {
		l.broken = true
		return fmt.Errorf("durable: append %s: %w", l.path, err)
	}
	if err := l.faults.fileSync(l.f); err != nil {
		l.broken = true
		return fmt.Errorf("durable: fsync %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	metrics().appends.Inc()
	metrics().appendBytes.Add(int64(len(frame)))
	return nil
}

// Rewrite atomically replaces the log's contents with the given payloads
// (compaction): frames them into a fresh temp file, fsyncs, renames over
// the log, fsyncs the directory, and reopens for appending. On failure the
// old log is untouched and still open.
func (l *Log) Rewrite(payloads [][]byte) error {
	var buf []byte
	for _, p := range payloads {
		if len(p) == 0 {
			return fmt.Errorf("durable: empty record in rewrite")
		}
		frame := make([]byte, frameHeaderLen)
		putU32(frame, uint32(len(p)))
		putU32(frame[4:], Checksum(p))
		buf = append(buf, frame...)
		buf = append(buf, p...)
	}
	if err := l.faults.AtomicWriteFile(l.path, buf, 0o644); err != nil {
		return err
	}
	// The rename invalidated our open descriptor; switch to the new file.
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: reopen after rewrite: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("durable: seek after rewrite: %w", err)
	}
	old := l.f
	l.f = f
	l.size = int64(len(buf))
	l.broken = false
	_ = old.Close()
	return nil
}

// Size returns the log's current on-disk size in bytes.
func (l *Log) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the log file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
