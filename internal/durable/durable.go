// Package durable is the crash-consistency toolkit of the NDPipe
// prototype: atomic file replacement with real fsync barriers, a CRC32C-
// framed append-only record log whose reader truncates a torn tail instead
// of failing, and seeded disk-fault hooks (short write, write error, sync
// error, crash-before/after-rename) that follow the same spec DSL as
// internal/faultinject's network faults — so a crash schedule replays
// identically run after run.
//
// The durability contract every caller builds on:
//
//   - AtomicWriteFile: after it returns nil, the file holds the new bytes
//     even across power loss (temp written, temp fsynced, renamed, parent
//     directory fsynced). After a crash at ANY point inside it, the file
//     holds either the complete old bytes or the complete new bytes, never
//     a mixture and never a truncation.
//   - Log.Append: after it returns nil, the record is on disk (framed,
//     checksummed, fsynced). A crash mid-append leaves at most a torn tail,
//     which the next Open verifies against the per-record CRC32C, truncates,
//     and counts — every fully acknowledged record survives.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"ndpipe/internal/telemetry"
)

// castagnoli is the CRC32C polynomial table (the checksum used by ext4
// metadata, iSCSI, and most WAL implementations; hardware-accelerated).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ErrCrashed is the injected-crash sentinel: a fault hook decided the
// process dies *here*. Callers must abandon the operation exactly as it
// stands — no cleanup, no rollback — so the on-disk state is precisely what
// a real kill at that point would leave behind. Test harnesses then recover
// from that state with a fresh process.
var ErrCrashed = errors.New("durable: injected crash")

// ErrCorrupt marks a checksummed file whose frame or CRC32C does not verify.
var ErrCorrupt = errors.New("durable: checksum mismatch")

// metrics are the package-wide durability instruments, registered lazily so
// importing durable costs nothing until it is used.
var (
	metricsOnce sync.Once
	met         struct {
		atomicWrites *telemetry.Counter // completed AtomicWriteFile calls
		appends      *telemetry.Counter // completed Log.Append calls
		appendBytes  *telemetry.Counter // framed bytes appended
		replayed     *telemetry.Counter // records replayed across all Opens
		tornTails    *telemetry.Counter // torn tails truncated by Open
		corruptFiles *telemetry.Counter // checksummed files failing verification
		faultsFired  *telemetry.Counter // injected disk faults
	}
)

func metrics() *struct {
	atomicWrites *telemetry.Counter
	appends      *telemetry.Counter
	appendBytes  *telemetry.Counter
	replayed     *telemetry.Counter
	tornTails    *telemetry.Counter
	corruptFiles *telemetry.Counter
	faultsFired  *telemetry.Counter
} {
	metricsOnce.Do(func() {
		reg := telemetry.Default
		met.atomicWrites = reg.Counter("durable_atomic_writes_total")
		met.appends = reg.Counter("durable_wal_appends_total")
		met.appendBytes = reg.Counter("durable_wal_append_bytes_total")
		met.replayed = reg.Counter("durable_records_replayed_total")
		met.tornTails = reg.Counter("durable_torn_tail_truncations_total")
		met.corruptFiles = reg.Counter("durable_corrupt_files_total")
		met.faultsFired = reg.Counter("durable_faults_fired_total")
	})
	return &met
}

// FaultKind selects which disk misbehaviour a rule injects.
type FaultKind uint8

// Disk fault kinds.
const (
	// ShortWrite persists a prefix of the write (half the bytes) and then
	// fails — the torn write a power cut leaves behind.
	ShortWrite FaultKind = iota + 1
	// WriteErr fails the write without persisting anything (EIO).
	WriteErr
	// SyncErr fails the fsync; the data may or may not be durable.
	SyncErr
	// CrashBeforeRename returns ErrCrashed after the temp file is written
	// and fsynced but before the rename — the destination still holds the
	// old bytes, an orphan temp file remains.
	CrashBeforeRename
	// CrashAfterRename returns ErrCrashed after the rename but before the
	// parent directory fsync — the destination holds the new bytes.
	CrashAfterRename
	// CrashWrite persists a prefix of the write and returns ErrCrashed:
	// the process dies mid-write, leaving a torn frame on disk.
	CrashWrite
	// Bitflip flips one seeded bit of an object file at rest — silent media
	// rot, the corruption scrub exists to catch. Fired by Faults.Object.
	Bitflip
	// Truncate cuts an object file to a seeded strict prefix at rest — the
	// damage a lost tail extent leaves behind. Fired by Faults.Object.
	Truncate
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case ShortWrite:
		return "shortwrite"
	case WriteErr:
		return "writeerr"
	case SyncErr:
		return "syncerr"
	case CrashBeforeRename:
		return "crash:before-rename"
	case CrashAfterRename:
		return "crash:after-rename"
	case CrashWrite:
		return "crash:write"
	case Bitflip:
		return "bitflip"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("faultkind(%d)", uint8(k))
}

// opClass groups the hook points a rule's counter ticks on.
type opClass uint8

const (
	opWrite opClass = iota + 1
	opSync
	opRename
	opObject // completed object-file writes (Faults.Object hook)
)

func (k FaultKind) class() opClass {
	switch k {
	case ShortWrite, WriteErr, CrashWrite:
		return opWrite
	case SyncErr:
		return opSync
	case Bitflip, Truncate:
		return opObject
	default:
		return opRename
	}
}

// FaultRule schedules one disk fault, mirroring faultinject.Rule: with
// After > 0 and Prob == 0 it fires exactly at the After-th matching
// operation; with Prob > 0 it fires per matching operation with that
// probability once the After-th op has passed; Once caps probabilistic
// rules at a single firing. Crash kinds are implicitly one-shot.
type FaultRule struct {
	Kind  FaultKind
	After int
	Prob  float64
	Once  bool
}

func (r FaultRule) validate() error {
	switch r.Kind {
	case ShortWrite, WriteErr, SyncErr, CrashBeforeRename, CrashAfterRename, CrashWrite, Bitflip, Truncate:
	default:
		return fmt.Errorf("durable: fault rule has no kind")
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("durable: probability %v outside [0,1]", r.Prob)
	}
	if r.After < 0 {
		return fmt.Errorf("durable: negative after=%d", r.After)
	}
	if r.After == 0 && r.Prob == 0 {
		return fmt.Errorf("durable: %s rule needs after=N or prob=P", r.Kind)
	}
	return nil
}

// injectedError is a non-crash injected I/O failure.
type injectedError struct{ kind FaultKind }

func (e injectedError) Error() string { return fmt.Sprintf("durable: injected %s", e.kind) }

// Faults owns a seeded disk-fault schedule. A nil *Faults injects nothing —
// every hook is nil-safe, so production code passes nil and pays only a
// branch. Rule counters are per-Faults (not per-file): one schedule spans
// every file operation the owner performs, which is how "crash at the N-th
// write of the run" is expressed.
type Faults struct {
	mu     sync.Mutex
	rng    *rand.Rand
	states []faultRuleState
	seed   int64
}

type faultRuleState struct {
	rule  FaultRule
	ops   int
	spent bool
}

// NewFaults builds a disk-fault injector with the given seed and schedule.
// Seed 0 is replaced by 1 so the zero value stays deterministic.
func NewFaults(seed int64, rules ...FaultRule) (*Faults, error) {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	if seed == 0 {
		seed = 1
	}
	f := &Faults{rng: rand.New(rand.NewSource(seed)), seed: seed}
	f.states = make([]faultRuleState, len(rules))
	for i, r := range rules {
		f.states[i] = faultRuleState{rule: r}
	}
	return f, nil
}

// Seed returns the injector's seed (for logging crash runs).
func (f *Faults) Seed() int64 { return f.seed }

// ParseFaults builds an injector from a spec string in the same shape as
// faultinject.Parse: semicolon-separated `kind:param,param` clauses with an
// optional standalone `seed=N`. Kinds: shortwrite, writeerr, syncerr,
// crash. A crash clause names its point with a bare parameter —
// before-rename, after-rename, or write. Parameters: after=N, prob=P, once.
//
//	seed=7;shortwrite:after=3
//	crash:before-rename,after=1
//	crash:write,after=5;writeerr:prob=0.01
//
// An empty spec returns (nil, nil): no injection.
func ParseFaults(spec string) (*Faults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		seed  int64
		rules []FaultRule
	)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("durable: bad seed %q: %w", v, err)
			}
			seed = n
			continue
		}
		kindStr, params, _ := strings.Cut(clause, ":")
		var r FaultRule
		isCrash := false
		switch kindStr {
		case "shortwrite":
			r.Kind = ShortWrite
		case "writeerr":
			r.Kind = WriteErr
		case "syncerr":
			r.Kind = SyncErr
		case "bitflip":
			r.Kind = Bitflip
		case "truncate":
			r.Kind = Truncate
		case "crash":
			isCrash = true
		default:
			return nil, fmt.Errorf("durable: unknown fault %q (want shortwrite|writeerr|syncerr|bitflip|truncate|crash)", kindStr)
		}
		for _, p := range strings.Split(params, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			key, val, hasVal := strings.Cut(p, "=")
			var err error
			switch {
			case isCrash && !hasVal && key == "before-rename":
				r.Kind = CrashBeforeRename
			case isCrash && !hasVal && key == "after-rename":
				r.Kind = CrashAfterRename
			case isCrash && !hasVal && key == "write":
				r.Kind = CrashWrite
			case key == "once" && !hasVal:
				r.Once = true
			case key == "after":
				r.After, err = strconv.Atoi(val)
			case key == "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
			default:
				return nil, fmt.Errorf("durable: unknown parameter %q in %q", p, clause)
			}
			if err != nil {
				return nil, fmt.Errorf("durable: bad parameter %q: %w", p, err)
			}
		}
		if isCrash && r.Kind == 0 {
			return nil, fmt.Errorf("durable: crash clause %q needs a point (before-rename|after-rename|write)", clause)
		}
		if isCrash && r.After == 0 && r.Prob == 0 {
			// Crash points default to the first matching operation.
			r.After = 1
		}
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%w (clause %q)", err, clause)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("durable: spec %q has no fault clauses", spec)
	}
	return NewFaults(seed, rules...)
}

// decide advances every rule of the given class by one operation and
// returns the first that fires (crash kinds are implicitly one-shot).
func (f *Faults) decide(class opClass) (FaultKind, bool) {
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.states {
		st := &f.states[i]
		if st.rule.Kind.class() != class {
			continue
		}
		st.ops++
		if st.rule.Kind == CrashAfterRename {
			// Counted here (the rename op), fired by afterRenameCrash —
			// decide runs at the before-rename point, too early to crash.
			continue
		}
		if st.spent || st.ops < st.rule.After {
			continue
		}
		fire := false
		if st.rule.Prob > 0 {
			fire = f.rng.Float64() < st.rule.Prob
		} else {
			fire = st.ops == st.rule.After
		}
		if !fire {
			continue
		}
		switch st.rule.Kind {
		case CrashBeforeRename, CrashAfterRename, CrashWrite:
			st.spent = true
		default:
			if st.rule.Once || st.rule.Prob == 0 {
				st.spent = true
			}
		}
		metrics().faultsFired.Inc()
		return st.rule.Kind, true
	}
	return 0, false
}

// Object runs path — a completed object file at rest — through the fault
// schedule, modelling silent media rot: Bitflip flips one seeded bit in
// place, Truncate cuts the file to a seeded strict prefix. Object stores
// call it after each successful object write. The corruption itself is
// deliberately silent (real bit rot raises no error; only scrub catches
// it); a non-nil return means the injector itself failed to apply the
// fault, which is a test-harness bug, not an injected condition.
func (f *Faults) Object(path string) error {
	kind, fired := f.decide(opObject)
	if !fired {
		return nil
	}
	f.mu.Lock()
	roll := f.rng.Int63()
	f.mu.Unlock()
	switch kind {
	case Bitflip:
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(b) == 0 {
			return nil
		}
		bit := roll % int64(len(b)*8)
		b[bit/8] ^= 1 << (bit % 8)
		return os.WriteFile(path, b, 0o644)
	case Truncate:
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		if fi.Size() == 0 {
			return nil
		}
		return os.Truncate(path, roll%fi.Size())
	}
	return nil
}

// fileWrite writes b to file through the fault schedule: a ShortWrite or
// CrashWrite persists the first half of b before failing, so the file holds
// a genuinely torn frame.
func (f *Faults) fileWrite(file *os.File, b []byte) error {
	kind, fired := f.decide(opWrite)
	if !fired {
		_, err := file.Write(b)
		return err
	}
	switch kind {
	case ShortWrite, CrashWrite:
		if n := len(b) / 2; n > 0 {
			_, _ = file.Write(b[:n])
			_ = file.Sync() // the torn prefix really lands on disk
		}
		if kind == CrashWrite {
			return ErrCrashed
		}
		return injectedError{kind}
	default: // WriteErr
		return injectedError{kind}
	}
}

// fileSync fsyncs file through the fault schedule.
func (f *Faults) fileSync(file *os.File) error {
	if kind, fired := f.decide(opSync); fired {
		return injectedError{kind}
	}
	return file.Sync()
}

// beforeRename fires CrashBeforeRename rules.
func (f *Faults) beforeRename() error {
	if kind, fired := f.decide(opRename); fired && kind == CrashBeforeRename {
		return ErrCrashed
	}
	return nil
}

// afterRename fires CrashAfterRename rules. The rename op was already
// counted by beforeRename; this checks only the post-rename crash point.
func (f *Faults) afterRenameCrash() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.states {
		st := &f.states[i]
		if st.rule.Kind != CrashAfterRename || st.spent {
			continue
		}
		// CrashAfterRename shares the rename op counter ticked in decide
		// (beforeRename counted this op for all rename-class rules).
		if st.ops >= st.rule.After {
			st.spent = true
			metrics().faultsFired.Inc()
			return true
		}
	}
	return false
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Platforms that cannot sync directories (EINVAL) are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("durable: fsync %s: %w", dir, err)
	}
	return nil
}

// AtomicWriteFile replaces path with data crash-consistently: the bytes go
// to a temp file in the same directory, the temp file is fsynced, renamed
// over path, and the parent directory is fsynced so the rename itself is
// durable. A reader (or a post-crash recovery) sees either the complete old
// contents or the complete new contents, never a mixture.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	return (*Faults)(nil).AtomicWriteFile(path, data, perm)
}

// AtomicWriteFile is the fault-injectable form: hooks fire at each write,
// sync, and rename point. On ErrCrashed the temp file is deliberately left
// behind, exactly as a real kill would leave it; the next successful write
// to the same path overwrites it.
func (f *Faults) AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	file, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	cleanup := func(err error) error {
		_ = file.Close()
		if !errors.Is(err, ErrCrashed) {
			_ = os.Remove(tmp)
		}
		return err
	}
	if err := f.fileWrite(file, data); err != nil {
		return cleanup(fmt.Errorf("durable: writing %s: %w", tmp, err))
	}
	if err := f.fileSync(file); err != nil {
		return cleanup(fmt.Errorf("durable: fsync %s: %w", tmp, err))
	}
	if err := file.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: closing %s: %w", tmp, err)
	}
	if err := f.beforeRename(); err != nil {
		return err // crash point: temp stays, destination untouched
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if f.afterRenameCrash() {
		return ErrCrashed // crash point: rename landed, dir sync did not
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	metrics().atomicWrites.Inc()
	return nil
}

// checksummed single-file format: a fixed header binding length and CRC32C
// to the payload, so a recovery can tell a complete file from a damaged one.
//
//	magic "NDCK" | u32 crc32c(payload) | u64 len(payload) | payload
var ckMagic = [4]byte{'N', 'D', 'C', 'K'}

const ckHeaderLen = 4 + 4 + 8

// WriteFileChecksummed atomically replaces path with a checksummed frame
// around payload. Pair with ReadFileChecksummed.
func (f *Faults) WriteFileChecksummed(path string, payload []byte, perm os.FileMode) error {
	buf := make([]byte, ckHeaderLen+len(payload))
	copy(buf, ckMagic[:])
	putU32(buf[4:], Checksum(payload))
	putU64(buf[8:], uint64(len(payload)))
	copy(buf[ckHeaderLen:], payload)
	return f.AtomicWriteFile(path, buf, perm)
}

// WriteFileChecksummed is the hook-free form.
func WriteFileChecksummed(path string, payload []byte, perm os.FileMode) error {
	return (*Faults)(nil).WriteFileChecksummed(path, payload, perm)
}

// ReadFileChecksummed reads a file written by WriteFileChecksummed,
// verifying magic, length, and CRC32C. Damage of any kind — truncation, bit
// flips, a foreign file — returns an error wrapping ErrCorrupt; a missing
// file returns the underlying fs.ErrNotExist so callers can distinguish
// "never written" from "written and damaged".
func ReadFileChecksummed(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < ckHeaderLen || string(b[:4]) != string(ckMagic[:]) {
		metrics().corruptFiles.Inc()
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	want := getU32(b[4:])
	n := getU64(b[8:])
	if n != uint64(len(b)-ckHeaderLen) {
		metrics().corruptFiles.Inc()
		return nil, fmt.Errorf("%w: %s: length %d != payload %d", ErrCorrupt, path, n, len(b)-ckHeaderLen)
	}
	payload := b[ckHeaderLen:]
	if got := Checksum(payload); got != want {
		metrics().corruptFiles.Inc()
		return nil, fmt.Errorf("%w: %s: crc32c %08x != %08x", ErrCorrupt, path, got, want)
	}
	return payload, nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
