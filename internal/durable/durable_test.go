package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj")
	if err := AtomicWriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("got %q", b)
	}
	if err := AtomicWriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("got %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestAtomicWriteFileCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj")
	if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFaults("crash:before-rename")
	if err != nil {
		t.Fatal(err)
	}
	err = f.AtomicWriteFile(path, []byte("new"), 0o644)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Destination untouched; orphan temp stays (as a real kill would leave).
	if b, _ := os.ReadFile(path); string(b) != "old" {
		t.Fatalf("destination damaged: %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("expected orphan temp: %v", err)
	}
	// A later successful write recovers.
	if err := AtomicWriteFile(path, []byte("new2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "new2" {
		t.Fatalf("got %q", b)
	}
}

func TestAtomicWriteFileCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj")
	if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFaults("crash:after-rename")
	if err != nil {
		t.Fatal(err)
	}
	err = f.AtomicWriteFile(path, []byte("new"), 0o644)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Rename landed: destination already holds the new bytes.
	if b, _ := os.ReadFile(path); string(b) != "new" {
		t.Fatalf("got %q", b)
	}
}

func TestAtomicWriteFileInjectedErrors(t *testing.T) {
	for _, spec := range []string{"shortwrite:after=1", "writeerr:after=1", "syncerr:after=1"} {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "obj")
			if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := ParseFaults(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.AtomicWriteFile(path, []byte("new"), 0o644); err == nil {
				t.Fatal("want injected error")
			} else if errors.Is(err, ErrCrashed) {
				t.Fatalf("non-crash fault returned ErrCrashed: %v", err)
			}
			// Ordinary failures clean up their temp and leave the old bytes.
			if b, _ := os.ReadFile(path); string(b) != "old" {
				t.Fatalf("destination damaged: %q", b)
			}
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("temp not cleaned up: %v", err)
			}
		})
	}
}

func TestChecksummedFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	payload := []byte("the quick brown fox")
	if err := WriteFileChecksummed(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestChecksummedFileDetectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	payload := bytes.Repeat([]byte("abcdefgh"), 16)
	if err := WriteFileChecksummed(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit flip and every truncation length must be caught.
	for i := 0; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFileChecksummed(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d not detected: %v", i, err)
		}
	}
	for n := 0; n < len(whole); n++ {
		if err := os.WriteFile(path, whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFileChecksummed(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d not detected: %v", n, err)
		}
	}
	// Missing file is not "corrupt" — callers distinguish the two.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileChecksummed(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestParseFaults(t *testing.T) {
	good := []string{
		"seed=7;shortwrite:after=3",
		"crash:before-rename",
		"crash:after-rename,after=2",
		"crash:write,after=5;writeerr:prob=0.01",
		"syncerr:prob=0.5,once",
	}
	for _, spec := range good {
		if _, err := ParseFaults(spec); err != nil {
			t.Errorf("ParseFaults(%q): %v", spec, err)
		}
	}
	bad := []string{
		"unknown:after=1",
		"shortwrite",          // no after/prob
		"crash",               // no point
		"crash:somewhere",     // bad point
		"shortwrite:prob=1.5", // out of range
		"seed=x",
		"seed=7", // seed alone, no fault clause
	}
	for _, spec := range bad {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("ParseFaults(%q): want error", spec)
		}
	}
	if f, err := ParseFaults(""); err != nil || f != nil {
		t.Errorf("empty spec: got %v, %v", f, err)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	fire := func() []int {
		f, err := ParseFaults("seed=11;writeerr:prob=0.3")
		if err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 40; i++ {
			if _, ok := f.decide(opWrite); ok {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := fire(), fire()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("prob=0.3 over 40 ops never fired")
	}
}

func TestNilFaultsAreNoOps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj")
	var f *Faults
	if err := f.AtomicWriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}
