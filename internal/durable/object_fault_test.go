package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeObj(t *testing.T, dir, name string, n int) (string, []byte) {
	t.Helper()
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p, b
}

func TestObjectBitflipFlipsExactlyOneBit(t *testing.T) {
	f, err := ParseFaults("seed=11;bitflip:after=2")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1, want1 := writeObj(t, dir, "a", 256)
	p2, want2 := writeObj(t, dir, "b", 256)
	if err := f.Object(p1); err != nil {
		t.Fatal(err)
	}
	if err := f.Object(p2); err != nil {
		t.Fatal(err)
	}
	got1, _ := os.ReadFile(p1)
	if !bytes.Equal(got1, want1) {
		t.Fatal("after=2 rule fired on the first object")
	}
	got2, _ := os.ReadFile(p2)
	if len(got2) != len(want2) {
		t.Fatalf("bitflip changed the size: %d -> %d", len(want2), len(got2))
	}
	diff := 0
	for i := range got2 {
		for b := 0; b < 8; b++ {
			if (got2[i]^want2[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bitflip flipped %d bits, want exactly 1", diff)
	}
	// after=N with no prob is one-shot: a third object survives.
	p3, want3 := writeObj(t, dir, "c", 64)
	if err := f.Object(p3); err != nil {
		t.Fatal(err)
	}
	if got3, _ := os.ReadFile(p3); !bytes.Equal(got3, want3) {
		t.Fatal("one-shot bitflip fired again")
	}
}

func TestObjectBitflipDeterministicAcrossSeeds(t *testing.T) {
	flip := func(seed string) []byte {
		f, err := ParseFaults("seed=" + seed + ";bitflip:after=1")
		if err != nil {
			t.Fatal(err)
		}
		p, _ := writeObj(t, t.TempDir(), "a", 512)
		if err := f.Object(p); err != nil {
			t.Fatal(err)
		}
		b, _ := os.ReadFile(p)
		return b
	}
	if !bytes.Equal(flip("5"), flip("5")) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(flip("5"), flip("6")) {
		t.Fatal("different seeds flipped the same bit (suspicious)")
	}
}

func TestObjectTruncateCutsStrictPrefix(t *testing.T) {
	f, err := ParseFaults("seed=3;truncate:after=1")
	if err != nil {
		t.Fatal(err)
	}
	p, want := writeObj(t, t.TempDir(), "a", 300)
	if err := f.Object(p); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if len(got) >= len(want) {
		t.Fatalf("truncate left %d bytes of %d", len(got), len(want))
	}
	if !bytes.Equal(got, want[:len(got)]) {
		t.Fatal("truncate result is not a prefix of the original")
	}
}

func TestObjectProbOnceFiresAtMostOnce(t *testing.T) {
	f, err := ParseFaults("seed=9;truncate:prob=1.0,once")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fired := 0
	for i := 0; i < 5; i++ {
		p, want := writeObj(t, dir, string(rune('a'+i)), 100)
		if err := f.Object(p); err != nil {
			t.Fatal(err)
		}
		if got, _ := os.ReadFile(p); !bytes.Equal(got, want) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("prob=1,once fired %d times, want 1", fired)
	}
}

func TestObjectNilFaultsIsNoop(t *testing.T) {
	var f *Faults
	p, want := writeObj(t, t.TempDir(), "a", 10)
	if err := f.Object(p); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(p); !bytes.Equal(got, want) {
		t.Fatal("nil Faults corrupted the file")
	}
}

func TestParseFaultsRejectsBadObjectClauses(t *testing.T) {
	for _, spec := range []string{"bitflip", "truncate:", "bitflip:wat=1"} {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := ParseFaults("bitflip:after=3;truncate:prob=0.5"); err != nil {
		t.Errorf("valid combined spec rejected: %v", err)
	}
}
