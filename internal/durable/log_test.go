package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, path string, faults *Faults) (*Log, RecoverStats, [][]byte) {
	t.Helper()
	var got [][]byte
	l, stats, err := Open(path, faults, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l, stats, got
}

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, stats, _ := openCollect(t, path, nil)
	if stats.Records != 0 || stats.TornBytes != 0 {
		t.Fatalf("fresh log stats: %+v", stats)
	}
	records := [][]byte{[]byte("one"), []byte("two-two"), bytes.Repeat([]byte{0xAB}, 1000)}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, stats, got := openCollect(t, path, nil)
	defer l2.Close()
	if stats.Records != len(records) || stats.TornBytes != 0 {
		t.Fatalf("reopen stats: %+v", stats)
	}
	for i, r := range records {
		if !bytes.Equal(got[i], r) {
			t.Fatalf("record %d: got %q want %q", i, got[i], r)
		}
	}
	// Appending after reopen continues the chain.
	if err := l2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, stats, _ = openCollect(t, path, nil)
	if stats.Records != len(records)+1 {
		t.Fatalf("after reopen-append: %+v", stats)
	}
}

// TestLogTornTailEveryOffset is the kill-at-any-point property at the
// framing layer: truncate the log at EVERY byte offset and assert recovery
// yields exactly the records whose frames fit entirely below the cut.
func TestLogTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, _, _ := openCollect(t, path, nil)
	records := [][]byte{[]byte("a"), []byte("bbbb"), []byte("cc-cc-cc"), bytes.Repeat([]byte{7}, 100)}
	var ends []int64 // ends[i] = offset after record i
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	l.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for off := int64(0); off <= int64(len(whole)); off++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d", off))
		if err := os.WriteFile(torn, whole[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		var wantEnd int64
		for i, e := range ends {
			if e <= off {
				wantRecs = i + 1
				wantEnd = e
			}
		}
		l2, stats, got := openCollect(t, torn, nil)
		if stats.Records != wantRecs {
			t.Fatalf("offset %d: replayed %d records, want %d", off, stats.Records, wantRecs)
		}
		if wantTorn := off - wantEnd; stats.TornBytes != wantTorn {
			t.Fatalf("offset %d: torn %d bytes, want %d", off, stats.TornBytes, wantTorn)
		}
		for i := 0; i < wantRecs; i++ {
			if !bytes.Equal(got[i], records[i]) {
				t.Fatalf("offset %d: record %d mismatch", off, i)
			}
		}
		// The torn tail must be gone from disk, and the log appendable.
		if l2.Size() != wantEnd {
			t.Fatalf("offset %d: size %d after truncate, want %d", off, l2.Size(), wantEnd)
		}
		if err := l2.Append([]byte("resumed")); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		l2.Close()
		if fi, _ := os.Stat(torn); fi.Size() != wantEnd+8+int64(len("resumed")) {
			t.Fatalf("offset %d: on-disk size %d", off, fi.Size())
		}
		os.Remove(torn)
	}
}

// TestLogBitFlipTruncatesFromDamage flips one bit mid-log: the damaged
// record and everything after it are dropped, records before it survive.
func TestLogBitFlipTruncatesFromDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, _, _ := openCollect(t, path, nil)
	for i := 0; i < 4; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	firstEnd := int64(8 + 50)
	l.Close()
	whole, _ := os.ReadFile(path)
	// Flip a payload bit inside record 2.
	whole[firstEnd+8+10] ^= 0x01
	os.WriteFile(path, whole, 0o644)

	l2, stats, got := openCollect(t, path, nil)
	defer l2.Close()
	if stats.Records != 1 || len(got) != 1 {
		t.Fatalf("want 1 surviving record, got %d", stats.Records)
	}
	if stats.TornBytes != int64(len(whole))-firstEnd {
		t.Fatalf("torn bytes %d", stats.TornBytes)
	}
}

// TestLogZeroFilledTail mimics a filesystem that preallocated zeroes past
// the last durable write: an all-zero frame (len=0) must not parse as a
// valid empty record.
func TestLogZeroFilledTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, nil)
	if err := l.Append([]byte("real")); err != nil {
		t.Fatal(err)
	}
	end := l.Size()
	l.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(make([]byte, 64))
	f.Close()

	l2, stats, _ := openCollect(t, path, nil)
	defer l2.Close()
	if stats.Records != 1 || stats.TornBytes != 64 || l2.Size() != end {
		t.Fatalf("stats %+v size %d", stats, l2.Size())
	}
}

// TestLogHostileLength writes a frame whose length prefix claims 3 GiB:
// recovery must truncate, not allocate.
func TestLogHostileLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, nil)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	end := l.Size()
	l.Close()
	frame := make([]byte, 8+4)
	putU32(frame, uint32(3<<30))
	putU32(frame[4:], 0xDEAD)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(frame)
	f.Close()

	l2, stats, _ := openCollect(t, path, nil)
	defer l2.Close()
	if stats.Records != 1 || l2.Size() != end {
		t.Fatalf("stats %+v size %d", stats, l2.Size())
	}
}

func TestLogTornAppendMarksBroken(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	faults, err := ParseFaults("shortwrite:after=2")
	if err != nil {
		t.Fatal(err)
	}
	l, _, _ := openCollect(t, path, faults)
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("second-torn")); err == nil {
		t.Fatal("want injected short write")
	}
	// Broken log refuses further appends until reopened.
	if err := l.Append([]byte("third")); err == nil {
		t.Fatal("append on broken log must fail")
	}
	l.Close()

	l2, stats, got := openCollect(t, path, nil)
	defer l2.Close()
	if stats.Records != 1 || !bytes.Equal(got[0], []byte("first")) {
		t.Fatalf("recovery: %+v", stats)
	}
	if stats.TornBytes == 0 {
		t.Fatal("short write left no torn tail?")
	}
	if err := l2.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
}

func TestLogCrashWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	faults, err := ParseFaults("crash:write,after=2")
	if err != nil {
		t.Fatal(err)
	}
	l, _, _ := openCollect(t, path, faults)
	if err := l.Append([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("dies-here")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	l.Close()
	_, stats, got := openCollect(t, path, nil)
	if stats.Records != 1 || !bytes.Equal(got[0], []byte("committed")) {
		t.Fatalf("recovery after crash-write: %+v", stats)
	}
}

func TestLogRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, nil)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Compact down to the last two records.
	kept := [][]byte{[]byte("rec-3"), []byte("rec-4")}
	if err := l.Rewrite(kept); err != nil {
		t.Fatal(err)
	}
	// The live handle keeps appending to the NEW file.
	if err := l.Append([]byte("rec-5")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, stats, got := openCollect(t, path, nil)
	if stats.Records != 3 {
		t.Fatalf("after rewrite: %+v", stats)
	}
	want := append(kept, []byte("rec-5"))
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q want %q", i, got[i], want[i])
		}
	}
}

func TestLogRewriteCrashLeavesOldOrNew(t *testing.T) {
	for _, spec := range []string{"crash:before-rename", "crash:after-rename"} {
		t.Run(spec, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal")
			faults, err := ParseFaults(spec)
			if err != nil {
				t.Fatal(err)
			}
			l, _, _ := openCollect(t, path, faults)
			for i := 0; i < 3; i++ {
				if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			err = l.Rewrite([][]byte{[]byte("new-0")})
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("want ErrCrashed, got %v", err)
			}
			l.Close()
			_, stats, got := openCollect(t, path, nil)
			// Crash before rename: all old records. After: exactly the new set.
			switch spec {
			case "crash:before-rename":
				if stats.Records != 3 {
					t.Fatalf("old log damaged: %+v", stats)
				}
			case "crash:after-rename":
				if stats.Records != 1 || !bytes.Equal(got[0], []byte("new-0")) {
					t.Fatalf("new log incomplete: %+v", stats)
				}
			}
		})
	}
}

func TestLogRejectsEmptyAndOversized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, nil)
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
}
