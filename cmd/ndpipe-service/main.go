// ndpipe-service runs the complete photo system (Fig 3) against a synthetic
// workload trace: uploads flow through the online inference server into the
// PipeStores, the continuous-training policy fires as data accumulates, and
// searches hit the label index throughout.
//
//	ndpipe-service -stores 3 -uploads 4000 -retrain-every 1500
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/flightdump"
	"ndpipe/internal/serve"
	"ndpipe/internal/service"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
	"ndpipe/internal/trace"
)

func main() {
	var (
		stores   = flag.Int("stores", 3, "number of PipeStores")
		uploads  = flag.Int("uploads", 4000, "uploads in the trace")
		every    = flag.Int("retrain-every", 1500, "retrain after this many uploads (0=off)")
		seed     = flag.Int64("seed", 1, "workload seed")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /spans and /traces on this address (empty=off)")
		pprofOn  = flag.Bool("pprof", false, "also mount /debug/pprof on the telemetry server")
		logLevel = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		par      = flag.Int("parallelism", 0, "compute-kernel worker count (0=GOMAXPROCS)")
		stateDir = flag.String("state-dir", "", "persist tuner WAL and store model state here; restarts recover the last committed round (empty=in-memory)")
		quantize = flag.Bool("quantize", false, "run all frozen backbones (stores + inference server) as calibrated int8 replicas")
		deltaEnc = flag.String("delta-encoding", "dense", "wire encoding for classifier deltas to stores: dense|topk|int8")

		serveOn     = flag.Bool("serve", false, "route uploads through the serving gateway (dynamic batching + admission control + feature cache)")
		serveBatch  = flag.Int("serve-max-batch", 0, "gateway: photos per coalesced batch (0=default)")
		serveWait   = flag.Duration("serve-max-wait", 0, "gateway: max time the batcher holds a partial batch open (0=default)")
		serveQueue  = flag.Int("serve-queue", 0, "gateway: admission queue depth (0=default)")
		servePolicy = flag.String("serve-policy", "block", "gateway overload policy: block|shed")
		serveSLO    = flag.Duration("serve-slo", 0, "gateway: upload-latency SLO target (0=default)")
		serveCache  = flag.Int("serve-cache", 0, "gateway: content-hash feature-cache entries (0=default, -1=off)")
		serveTRate  = flag.Float64("serve-tenant-rate", 0, "gateway: per-tenant admission rate in uploads/sec (0=unthrottled)")
		serveTBurst = flag.Int("serve-tenant-burst", 0, "gateway: per-tenant token-bucket burst (0=derived from rate)")
	)
	flag.Parse()
	tensor.SetParallelism(*par)
	if err := telemetry.SetupLogging(os.Stderr, *logLevel, *logJSON); err != nil {
		fatal(err)
	}
	wcfg := dataset.DefaultConfig(*seed)
	wcfg.InitialImages = *uploads
	world := dataset.NewWorld(wcfg)

	policy := service.DefaultPolicy()
	policy.RetrainEveryUploads = *every
	policy.StateDir = *stateDir
	policy.Quantize = *quantize
	policy.DeltaEncoding = *deltaEnc
	if *serveOn {
		pol, err := serve.ParsePolicy(*servePolicy)
		if err != nil {
			fatal(err)
		}
		policy.Serve = true
		policy.ServeOptions = serve.Options{
			MaxBatch:     *serveBatch,
			MaxWait:      *serveWait,
			QueueDepth:   *serveQueue,
			Policy:       pol,
			SLOTarget:    *serveSLO,
			CacheEntries: *serveCache,
			TenantRate:   *serveTRate,
			TenantBurst:  *serveTBurst,
		}
	}
	svc, err := service.Start(core.DefaultModelConfig(), *stores, policy)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	// Degraded is visible but not fatal on /healthz: uploads keep serving
	// the last committed model while retraining fails.
	telemetry.Default.Health().RegisterCheck("retrain", func() error {
		if svc.Degraded() {
			return fmt.Errorf("degraded: retrain failing, serving last committed model (v%d)", svc.ModelVersion())
		}
		return nil
	})
	// The telemetry server mounts after Start so /fleet can serve the live
	// aggregator; service.Start registers the gateway readiness check itself.
	if *telAddr != "" {
		opts := []telemetry.ServeOption{telemetry.WithFleet(svc.Fleet())}
		if *pprofOn {
			opts = append(opts, telemetry.WithPprof())
		}
		addr, _, err := telemetry.Default.Serve(*telAddr, opts...)
		if err != nil {
			fatal(err)
		}
		slog.Info("telemetry serving",
			slog.String("component", "ndpipe-service"),
			slog.String("url", "http://"+addr),
			slog.Bool("pprof", *pprofOn))
	}
	if *stateDir != "" {
		// Crash black box: panic and SIGQUIT leave a replayable flight dump
		// in the state dir next to the tuner WAL.
		defer flightdump.Recover(telemetry.Default, "ndpipe-service", *stateDir)
		defer flightdump.InstallSignal(telemetry.Default, "ndpipe-service", *stateDir)()
	}

	tcfg := trace.DefaultConfig(*seed)
	tcfg.Classes = world.MaxClasses()
	tcfg.Duration = float64(*uploads) / tcfg.UploadsPerSec * 2
	events, err := trace.Generate(tcfg, world.Images())
	if err != nil {
		fatal(err)
	}
	stats := trace.Summarize(events)
	fmt.Printf("replaying trace: %d uploads, %d searches over %.0fs of logical time\n",
		stats.Uploads, stats.Searches, stats.Duration)

	start := time.Now()
	var searchHits int
	// svc.Upload routes through the gateway itself when -serve is set, so
	// the retrain/drift policy keeps firing on gateway uploads.
	err = trace.Replay(events,
		func(img dataset.Image) error {
			_, err := svc.Upload(img)
			return err
		},
		func(label int) error {
			searchHits += len(svc.Search(label))
			return nil
		})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("replay done in %.1fs: %d photos stored, %d retrain cycles, model v%d\n",
		elapsed.Seconds(), svc.DB().Len(), svc.RetrainRounds(), svc.ModelVersion())
	if svc.Degraded() {
		fmt.Printf("DEGRADED: retraining is failing; uploads served by the last committed model (v%d)\n",
			svc.ModelVersion())
	}
	fmt.Printf("search results served: %d\n", searchHits)
	if gw := svc.Gateway(); gw != nil {
		st := gw.Stats()
		hitPct := 0.0
		if st.CacheHits+st.CacheMisses > 0 {
			hitPct = 100 * float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		}
		fmt.Printf("gateway: %d admitted, %d completed, mean batch %.1f, cache hit %.1f%% (%d memo), %d shed, %d SLO violations\n",
			st.Admitted, st.Completed, st.MeanBatch(), hitPct, st.CacheResultHits, st.Rejected(), st.SLOViolations)
	}

	test := world.FreshTestSet(1000)
	top1, top5 := svc.Evaluate(test, 5)
	fmt.Printf("live model accuracy: top-1 %.2f%%  top-5 %.2f%%\n", 100*top1, 100*top5)

	correct, total := 0, 0
	for _, img := range world.Images() {
		if e, err := svc.DB().Get(img.ID); err == nil {
			total++
			if e.Label == img.Class {
				correct++
			}
		}
	}
	if total > 0 {
		fmt.Printf("label-index accuracy over %d stored photos: %.2f%%\n",
			total, 100*float64(correct)/float64(total))
	}
}

func fatal(err error) {
	slog.Error("ndpipe-service exiting", slog.Any("err", err))
	os.Exit(1)
}
