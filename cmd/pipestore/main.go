// pipestore runs one NDPipe storage server: it materializes its shard of
// the synthetic photo world (raw blobs + compressed preprocessed binaries),
// connects to a Tuner, and serves near-data feature extraction and offline
// inference until the Tuner disconnects.
//
//	pipestore -connect localhost:9230 -shard 0 -of 2 -seed 1
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
)

func main() {
	var (
		connect = flag.String("connect", "localhost:9230", "tuner address")
		id      = flag.String("id", "", "store ID (default ps-<shard>)")
		shard   = flag.Int("shard", 0, "shard index held by this store")
		of      = flag.Int("of", 1, "total number of shards")
		seed    = flag.Int64("seed", 1, "photo-world seed (must match peers)")
		images  = flag.Int("images", 6000, "world population size")
		telAddr = flag.String("telemetry-addr", "", "serve /metrics and /spans on this address (empty=off)")
	)
	flag.Parse()
	if *telAddr != "" {
		addr, _, err := telemetry.Default.Serve(*telAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("[telemetry] serving /metrics and /spans on http://%s\n", addr)
	}
	if *shard < 0 || *shard >= *of {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", *shard, *of))
	}
	if *id == "" {
		*id = fmt.Sprintf("ps-%d", *shard)
	}

	wcfg := dataset.DefaultConfig(*seed)
	wcfg.InitialImages = *images
	world := dataset.NewWorld(wcfg)
	shardImgs := world.Shard(*of)[*shard]

	node, err := pipestore.New(*id, core.DefaultModelConfig())
	if err != nil {
		fatal(err)
	}
	if err := node.Ingest(shardImgs); err != nil {
		fatal(err)
	}
	u := node.Storage().Usage()
	fmt.Printf("[%s] holding %d photos (%.1f MB raw, %.1f%% preproc overhead, %.1fx compression)\n",
		*id, node.NumImages(), float64(u.RawBytes)/1e6, 100*u.OverheadFraction, u.CompressionRatio)

	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("[%s] connected to tuner at %s\n", *id, *connect)
	if err := node.Serve(conn); err != nil {
		fatal(err)
	}
	fmt.Printf("[%s] tuner disconnected, shutting down\n", *id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipestore:", err)
	os.Exit(1)
}
