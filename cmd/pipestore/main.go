// pipestore runs one NDPipe storage server: it materializes its shard of
// the synthetic photo world (raw blobs + compressed preprocessed binaries),
// connects to a Tuner, and serves near-data feature extraction and offline
// inference until the Tuner disconnects.
//
//	pipestore -connect localhost:9230 -shard 0 -of 2 -seed 1
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
)

func main() {
	var (
		connect  = flag.String("connect", "localhost:9230", "tuner address")
		id       = flag.String("id", "", "store ID (default ps-<shard>)")
		shard    = flag.Int("shard", 0, "shard index held by this store")
		of       = flag.Int("of", 1, "total number of shards")
		seed     = flag.Int64("seed", 1, "photo-world seed (must match peers)")
		images   = flag.Int("images", 6000, "world population size")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /spans and /traces on this address (empty=off)")
		pprofOn  = flag.Bool("pprof", false, "also mount /debug/pprof on the telemetry server")
		logLevel = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		par      = flag.Int("parallelism", 0, "compute-kernel worker count (0=GOMAXPROCS)")
	)
	flag.Parse()
	tensor.SetParallelism(*par)
	if err := telemetry.SetupLogging(os.Stderr, *logLevel, *logJSON); err != nil {
		fatal(err)
	}
	if *shard < 0 || *shard >= *of {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", *shard, *of))
	}
	if *id == "" {
		*id = fmt.Sprintf("ps-%d", *shard)
	}
	log := telemetry.ComponentLogger("pipestore").With(slog.String("store", *id))
	if *telAddr != "" {
		var opts []telemetry.ServeOption
		if *pprofOn {
			opts = append(opts, telemetry.WithPprof())
		}
		addr, _, err := telemetry.Default.Serve(*telAddr, opts...)
		if err != nil {
			fatal(err)
		}
		log.Info("telemetry serving",
			slog.String("url", "http://"+addr),
			slog.Bool("pprof", *pprofOn))
	}

	wcfg := dataset.DefaultConfig(*seed)
	wcfg.InitialImages = *images
	world := dataset.NewWorld(wcfg)
	shardImgs := world.Shard(*of)[*shard]

	node, err := pipestore.New(*id, core.DefaultModelConfig())
	if err != nil {
		fatal(err)
	}
	if err := node.Ingest(shardImgs); err != nil {
		fatal(err)
	}
	u := node.Storage().Usage()
	log.Info("shard materialized",
		slog.Int("photos", node.NumImages()),
		slog.Float64("raw_mb", float64(u.RawBytes)/1e6),
		slog.Float64("preproc_overhead_pct", 100*u.OverheadFraction),
		slog.Float64("compression_ratio", u.CompressionRatio))

	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		fatal(err)
	}
	log.Info("connected to tuner", slog.String("addr", *connect))
	if err := node.Serve(conn); err != nil {
		fatal(err)
	}
	log.Info("tuner disconnected, shutting down")
}

func fatal(err error) {
	slog.Error("pipestore exiting", slog.Any("err", err))
	os.Exit(1)
}
