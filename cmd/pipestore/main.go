// pipestore runs one NDPipe storage server: it materializes its shard of
// the synthetic photo world (raw blobs + compressed preprocessed binaries),
// connects to a Tuner, and serves near-data feature extraction and offline
// inference until the Tuner disconnects.
//
//	pipestore -connect localhost:9230 -shard 0 -of 2 -seed 1
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strings"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/delta"
	"ndpipe/internal/durable"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/flightdump"
	"ndpipe/internal/photostore"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/placement"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
)

func main() {
	var (
		connect    = flag.String("connect", "localhost:9230", "tuner address")
		tunerAddrs = flag.String("tuner-addrs", "", "comma-separated tuner addresses tried in rotation (leader first, standbys after); overrides -connect")
		id         = flag.String("id", "", "store ID (default ps-<shard>)")
		shard      = flag.Int("shard", 0, "shard index held by this store")
		of         = flag.Int("of", 1, "total number of shards")
		seed       = flag.Int64("seed", 1, "photo-world seed (must match peers)")
		images     = flag.Int("images", 6000, "world population size")
		telAddr    = flag.String("telemetry-addr", "", "serve /metrics, /spans and /traces on this address (empty=off)")
		pprofOn    = flag.Bool("pprof", false, "also mount /debug/pprof on the telemetry server")
		logLevel   = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		par        = flag.Int("parallelism", 0, "compute-kernel worker count (0=GOMAXPROCS)")

		quantize = flag.Bool("quantize", false, "run the frozen backbone as a calibrated int8 replica (SWAR kernels)")
		deltaEnc = flag.String("delta-encoding", "dense", "wire encoding to request for classifier deltas: dense|topk|int8")

		dialRetries = flag.Int("dial-retries", 0, "connection attempts per session (0=default 5)")
		dialBackoff = flag.Duration("dial-backoff", 0, "base dial backoff, doubled and jittered (0=default 100ms)")
		rejoinFlag  = flag.Bool("rejoin", false, "redial and re-register after the session ends (survives tuner restarts and evictions)")
		faultSpec   = flag.String("fault-spec", "", "inject deterministic faults on the tuner conn, e.g. 'seed=7;drop:write,after=40' (empty=off)")
		stateDir    = flag.String("state-dir", "", "persist model state and photos here; on restart, re-register at the persisted version (empty=in-memory)")

		replication   = flag.Int("replication", 0, "materialize this shard by consistent-hash placement over ps-0..ps-<of-1> with this replication factor (0=classic modulo sharding)")
		scrubInterval = flag.Duration("scrub-interval", 0, "background integrity scrub period; each tick verifies -scrub-batch objects (0=off)")
		scrubBatch    = flag.Int("scrub-batch", 256, "objects verified per scrub tick")
		objFaultSpec  = flag.String("object-fault-spec", "", "inject seeded at-rest corruption into stored objects, e.g. 'seed=7;bitflip:object,after=40' (needs -state-dir; empty=off)")
	)
	flag.Parse()
	tensor.SetParallelism(*par)
	if err := telemetry.SetupLogging(os.Stderr, *logLevel, *logJSON); err != nil {
		fatal(err)
	}
	if *shard < 0 || *shard >= *of {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", *shard, *of))
	}
	if *id == "" {
		*id = fmt.Sprintf("ps-%d", *shard)
	}
	log := telemetry.ComponentLogger("pipestore").With(slog.String("store", *id))
	if *telAddr != "" {
		var opts []telemetry.ServeOption
		if *pprofOn {
			opts = append(opts, telemetry.WithPprof())
		}
		addr, _, err := telemetry.Default.Serve(*telAddr, opts...)
		if err != nil {
			fatal(err)
		}
		log.Info("telemetry serving",
			slog.String("url", "http://"+addr),
			slog.Bool("pprof", *pprofOn))
	}

	wcfg := dataset.DefaultConfig(*seed)
	wcfg.InitialImages = *images
	world := dataset.NewWorld(wcfg)
	var shardImgs []dataset.Image
	if *replication > 0 {
		// Ring-based materialization: this store holds every photo whose R
		// ring replicas include it, so the same placement function the tuner
		// uses for routing and repair decides what lives here. Members are
		// the fleet's canonical IDs ps-0..ps-<of-1>.
		members := make([]string, *of)
		for i := range members {
			members[i] = fmt.Sprintf("ps-%d", i)
		}
		ring, rerr := placement.New(members, *replication)
		if rerr != nil {
			fatal(rerr)
		}
		mine := false
		for _, m := range members {
			if m == *id {
				mine = true
			}
		}
		if !mine {
			fatal(fmt.Errorf("-replication needs a canonical store ID (ps-0..ps-%d), got %q", *of-1, *id))
		}
		for _, img := range world.Images() {
			for _, rep := range ring.Replicas(img.ID) {
				if rep == *id {
					shardImgs = append(shardImgs, img)
					break
				}
			}
		}
	} else {
		shardImgs = world.Shard(*of)[*shard]
	}

	var node *pipestore.Node
	var err error
	if *stateDir != "" {
		// Durable node: photos on disk, model state recovered across restarts.
		photos, perr := photostore.OpenDir(filepath.Join(*stateDir, "photos"))
		if perr != nil {
			fatal(perr)
		}
		if *objFaultSpec != "" {
			fts, ferr := durable.ParseFaults(*objFaultSpec)
			if ferr != nil {
				fatal(ferr)
			}
			if fts != nil {
				photos.SetFaults(fts)
				log.Warn("at-rest corruption injection active",
					slog.String("spec", *objFaultSpec), slog.Int64("seed", fts.Seed()))
			}
		}
		node, err = pipestore.NewWithStorage(*id, core.DefaultModelConfig(), photos)
		if err != nil {
			fatal(err)
		}
		rec, rerr := node.OpenState(*stateDir)
		if rerr != nil {
			fatal(rerr)
		}
		log.Info("state recovered",
			slog.String("dir", *stateDir),
			slog.Int("version", rec.Version),
			slog.Bool("cold", rec.Cold),
			slog.Duration("elapsed", rec.Elapsed))
	} else {
		if *objFaultSpec != "" {
			fatal(fmt.Errorf("-object-fault-spec needs -state-dir"))
		}
		node, err = pipestore.New(*id, core.DefaultModelConfig())
		if err != nil {
			fatal(err)
		}
	}
	if *scrubInterval > 0 {
		stopScrub := node.StartScrub(*scrubInterval, *scrubBatch)
		defer stopScrub()
		log.Info("background scrub active",
			slog.Duration("interval", *scrubInterval),
			slog.Int("batch", *scrubBatch))
	}
	if *quantize {
		if err := node.SetQuantize(); err != nil {
			fatal(err)
		}
		log.Info("quantized backbone active", slog.String("precision", "int8"))
	}
	enc, err := delta.ParseEncoding(*deltaEnc)
	if err != nil {
		fatal(err)
	}
	if err := node.SetDeltaEncoding(enc); err != nil {
		fatal(err)
	}
	if err := node.Ingest(shardImgs); err != nil {
		fatal(err)
	}
	// Readiness: a store is serving only while its tuner session is live.
	telemetry.Default.Health().RegisterCheck("tuner", func() error {
		if !node.Connected() {
			return fmt.Errorf("not connected to tuner")
		}
		return nil
	})
	if *stateDir != "" {
		// Crash black box: panic and SIGQUIT leave a replayable flight dump
		// in the state dir next to the model state.
		defer flightdump.Recover(telemetry.Default, "pipestore", *stateDir)
		defer flightdump.InstallSignal(telemetry.Default, "pipestore", *stateDir)()
	}
	u := node.Storage().Usage()
	log.Info("shard materialized",
		slog.Int("photos", node.NumImages()),
		slog.Float64("raw_mb", float64(u.RawBytes)/1e6),
		slog.Float64("preproc_overhead_pct", 100*u.OverheadFraction),
		slog.Float64("compression_ratio", u.CompressionRatio))

	var inj *faultinject.Injector
	if *faultSpec != "" {
		if inj, err = faultinject.Parse(*faultSpec); err != nil {
			fatal(err)
		}
		if inj != nil {
			log.Warn("fault injection active", slog.String("spec", *faultSpec), slog.Int64("seed", inj.Seed()))
		}
	}
	// -tuner-addrs enables leader failover: addresses are tried in rotation
	// per attempt, so when the leader dies the store's redial lands on the
	// standby (which holds it in its listen backlog until takeover).
	addrs := []string{*connect}
	if *tunerAddrs != "" {
		addrs = strings.Split(*tunerAddrs, ",")
	}
	dialAddr := func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		log.Info("connected to tuner", slog.String("addr", addr))
		return inj.Conn(conn), nil
	}
	err = node.DialRetryMulti(addrs, pipestore.DialOptions{
		Attempts: *dialRetries,
		Backoff:  *dialBackoff,
		Rejoin:   *rejoinFlag,
		DialAddr: dialAddr,
	})
	if err != nil {
		fatal(err)
	}
	log.Info("tuner disconnected, shutting down")
}

func fatal(err error) {
	slog.Error("pipestore exiting", slog.Any("err", err))
	os.Exit(1)
}
