// tuner runs the NDPipe training server: it listens for PipeStore
// registrations, triggers pipelined FT-DMP fine-tuning, distributes the
// Check-N-Run model delta, and refreshes the label database via near-data
// offline inference — the two-machine workflow of the artifact appendix.
//
//	tuner -listen :9230 -stores 2 -nrun 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/faultinject"
	"ndpipe/internal/flightdump"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/ha"
	"ndpipe/internal/telemetry"
	"ndpipe/internal/tensor"
	"ndpipe/internal/tuner"
)

func main() {
	var (
		listen    = flag.String("listen", ":9230", "address to listen on")
		stores    = flag.Int("stores", 1, "number of PipeStores to wait for")
		nrun      = flag.Int("nrun", 3, "pipelined FT-DMP runs")
		batch     = flag.Int("batch", 128, "feature-extraction batch size")
		telAddr   = flag.String("telemetry-addr", "", "serve /metrics, /spans and /traces on this address (empty=off)")
		pprofOn   = flag.Bool("pprof", false, "also mount /debug/pprof on the telemetry server")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		acceptTTL = flag.Duration("accept-timeout", 0, "per-store registration deadline (0=wait forever)")
		par       = flag.Int("parallelism", 0, "compute-kernel worker count (0=GOMAXPROCS)")

		replication = flag.Int("replication", 0, "photo replication factor: rounds route each photo to a live ring replica, and failed stores are rebuilt from survivors after a degraded commit (0=off)")

		quorum     = flag.Int("quorum", 0, "minimum surviving stores for a round to commit (0=default 1)")
		storeTTL   = flag.Duration("store-timeout", 0, "per-store silence/send deadline (0=default 30s)")
		roundTTL   = flag.Duration("round-timeout", 0, "per-phase round deadline (0=default 5m)")
		maxRetries = flag.Int("max-retries", 0, "per-store send retries (0=default 3, -1=none)")
		backoff    = flag.Duration("backoff", 0, "base retry backoff, doubled and jittered (0=default 50ms)")
		faultSpec  = flag.String("fault-spec", "", "inject deterministic faults on accepted conns, e.g. 'seed=7;drop:write,after=40' (empty=off)")

		stateDir    = flag.String("state-dir", "", "persist the WAL, model archive and labels here; on restart, recover the last committed round (empty=in-memory)")
		compactKeep = flag.Int("compact-keep", 0, "after each round, compact the WAL keeping this many recent versions (0=never; needs -state-dir)")

		role     = flag.String("role", "leader", "leader|standby: standbys tail a leader's WAL and take over when its lease expires")
		haListen = flag.String("ha-listen", "", "accept hot-standby WAL-shipping connections on this address (needs -state-dir)")
		haPeers  = flag.String("ha-peers", "", "standby: comma-separated leader WAL-shipping addresses to replicate from")
		haLease  = flag.Duration("ha-lease", 0, "leadership lease: standbys take over after this much leader silence (0=default 2s)")
	)
	flag.Parse()
	tensor.SetParallelism(*par)
	if err := telemetry.SetupLogging(os.Stderr, *logLevel, *logJSON); err != nil {
		fatal(err)
	}
	log := telemetry.ComponentLogger("tuner")

	cfg := core.DefaultModelConfig()
	tn, err := tuner.New(cfg)
	if err != nil {
		fatal(err)
	}
	tn.AcceptTimeout = *acceptTTL

	// Readiness: the tuner is serving once state is recovered (trivially
	// true without -state-dir) and at least one store has registered.
	var stateReady atomic.Bool
	stateReady.Store(*stateDir == "")
	telemetry.Default.Health().RegisterCheck("state", func() error {
		if !stateReady.Load() {
			return fmt.Errorf("state not recovered")
		}
		return nil
	})
	telemetry.Default.Health().RegisterCheck("stores", func() error {
		if tn.NumStores() == 0 {
			return fmt.Errorf("no stores registered")
		}
		return nil
	})
	if *telAddr != "" {
		opts := []telemetry.ServeOption{telemetry.WithFleet(tn.Fleet())}
		if *pprofOn {
			opts = append(opts, telemetry.WithPprof())
		}
		addr, _, err := telemetry.Default.Serve(*telAddr, opts...)
		if err != nil {
			fatal(err)
		}
		log.Info("telemetry serving",
			slog.String("url", "http://"+addr),
			slog.Bool("pprof", *pprofOn))
	}
	if *stateDir != "" {
		// Crash black box: panic and SIGQUIT leave a replayable flight dump
		// in the state dir next to the WAL.
		defer flightdump.Recover(telemetry.Default, "tuner", *stateDir)
		defer flightdump.InstallSignal(telemetry.Default, "tuner", *stateDir)()
	}
	logRecovered := func(rec tuner.RecoveryReport) {
		log.Info("state recovered",
			slog.String("dir", *stateDir),
			slog.Int("version", rec.Version),
			slog.Int("epoch", rec.Epoch),
			slog.Int("wal_records", rec.Records),
			slog.Int64("torn_bytes", rec.TornBytes),
			slog.Int("labels", rec.Labels),
			slog.Duration("elapsed", rec.Elapsed))
	}
	switch *role {
	case "leader":
		if *stateDir != "" {
			rec, err := tn.OpenState(*stateDir)
			if err != nil {
				fatal(err)
			}
			logRecovered(rec)
			stateReady.Store(true)
		} else if *compactKeep > 0 {
			fatal(fmt.Errorf("-compact-keep needs -state-dir"))
		}
	case "standby":
		// Hot standby: tail the leader's WAL into -state-dir until its lease
		// expires, then recover from the replica and continue below as the
		// new leader (strictly higher epoch — stores fence the old one).
		if *stateDir == "" {
			fatal(fmt.Errorf("-role standby needs -state-dir"))
		}
		if *haPeers == "" {
			fatal(fmt.Errorf("-role standby needs -ha-peers"))
		}
		sb, err := ha.NewStandby(cfg, *stateDir, ha.Options{LeaseTimeout: *haLease})
		if err != nil {
			fatal(err)
		}
		sb.RegisterHealth(telemetry.Default.Health())
		peers := strings.Split(*haPeers, ",")
		log.Info("standby replicating", slog.Any("peers", peers))
		if err := sb.Run(peers); !errors.Is(err, ha.ErrLeaseExpired) {
			fatal(err)
		}
		tn2, rec, err := sb.TakeOver()
		if err != nil {
			fatal(err)
		}
		tn.Close()
		tn = tn2
		tn.AcceptTimeout = *acceptTTL
		logRecovered(rec)
		telemetry.Default.Health().SetRole(func() (string, int64) { return "leader", 0 })
		telemetry.Default.Health().RegisterCheck("ha-role", func() error { return nil })
		stateReady.Store(true)
	default:
		fatal(fmt.Errorf("unknown -role %q (leader|standby)", *role))
	}
	if *haListen != "" {
		// This node leads with a standby endpoint: every committed round is
		// fsynced locally AND acked by each attached standby before the
		// fleet sees its delta.
		if *stateDir == "" {
			fatal(fmt.Errorf("-ha-listen needs -state-dir"))
		}
		if tn.LeaderEpoch() == 0 {
			if _, err := tn.AssertLeadership(0); err != nil {
				fatal(err)
			}
		}
		ship := ha.NewShipper(tn, ha.Options{LeaseTimeout: *haLease})
		defer ship.Close()
		tn.SetReplicator(ship)
		hln, err := net.Listen("tcp", *haListen)
		if err != nil {
			fatal(err)
		}
		defer hln.Close()
		go func() { _ = ship.Serve(hln) }()
		log.Info("WAL shipping to standbys", slog.String("addr", hln.Addr().String()))
	}
	if *replication > 0 {
		if err := tn.EnableReplication(*replication); err != nil {
			fatal(err)
		}
		log.Info("photo replication active", slog.Int("factor", *replication))
	}
	tn.SetRoundOptions(tuner.RoundOptions{
		Quorum:       *quorum,
		StoreTimeout: *storeTTL,
		RoundTimeout: *roundTTL,
		MaxRetries:   *maxRetries,
		Backoff:      *backoff,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		if inj != nil {
			ln = inj.Listener(ln)
			log.Warn("fault injection active", slog.String("spec", *faultSpec), slog.Int64("seed", inj.Seed()))
		}
	}
	log.Info("listening for PipeStores",
		slog.String("addr", ln.Addr().String()),
		slog.Int("expected", *stores))
	if err := tn.AcceptStores(ln, *stores); err != nil {
		fatal(err)
	}
	log.Info("fleet registered", slog.Int("stores", tn.NumStores()))

	start := time.Now()
	rep, err := tn.FineTune(*nrun, *batch, ftdmp.DefaultTrainOptions())
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("Feature extraction + training images: %d\n", rep.Images)
	fmt.Printf("Overall fine-tuning time (sec): %.2f\n", elapsed)
	fmt.Printf("Fine-tuning throughput (image/sec): %.2f\n", float64(rep.Images)/elapsed)
	fmt.Printf("Model delta: %d B (vs %d B full model, %.1fx reduction)\n",
		rep.DeltaBytes, rep.FullModelBytes, rep.TrafficReduction())
	fmt.Printf("Trace ID: %s\n", rep.Trace)
	if *compactKeep > 0 {
		if keepFrom := tn.ModelVersion() - *compactKeep; keepFrom > tn.Archive().Oldest() {
			if err := tn.CompactState(keepFrom); err != nil {
				log.Warn("state compaction failed", slog.Any("err", err))
			}
		}
	}
	if rep.Degraded {
		fmt.Printf("DEGRADED round: %d/%d stores survived (failed: %v), %d gathered images discarded\n",
			rep.Participants-len(rep.FailedStores), rep.Participants, rep.FailedStores, rep.ImagesLost)
		if *replication > 0 {
			// Re-replicate the dead stores' objects from survivors so the
			// fleet is back at full replication before the next round.
			for _, dead := range rep.FailedStores {
				rb, err := tn.Rebuild(dead)
				if err != nil {
					log.Warn("rebuild failed", slog.String("store", dead), slog.Any("err", err))
					continue
				}
				fmt.Printf("REBUILD %s: %d objects (%.1f MB) re-replicated in %.2fs\n",
					dead, rb.Objects, float64(rb.Bytes)/1e6, rb.Wall.Seconds())
			}
		}
	}
	if *replication > 0 {
		// Refill replicas that were never written (failed upload fan-out,
		// partial rebuilds) — absent copies have no bytes for checksum
		// scrubbing to catch, so only an inventory-vs-ring diff finds them.
		ae, err := tn.AntiEntropy()
		if err != nil {
			log.Warn("anti-entropy failed", slog.Any("err", err))
		} else if ae.Refills > 0 || ae.Failed > 0 {
			fmt.Printf("ANTI-ENTROPY: %d replicas refilled, %d gaps unfilled (%d objects over %d stores, %.2fs)\n",
				ae.Refills, ae.Failed, ae.Objects, ae.Stores, ae.Wall.Seconds())
		}
	}

	start = time.Now()
	st, err := tn.OfflineInference(*batch)
	if err != nil {
		fatal(err)
	}
	elapsed = time.Since(start).Seconds()
	fmt.Printf("[NDPipe] offline inference: %d images relabeled in %.2fs (%.2f IPS)\n",
		st.Total, elapsed, float64(st.Total)/elapsed)
	fmt.Printf("[NDPipe] labels fixed by model v%d: %.2f%%\n", st.ModelVersion, 100*st.FixedFrac)
}

func fatal(err error) {
	slog.Error("tuner exiting", slog.Any("err", err))
	os.Exit(1)
}
