// ndpipe-bench regenerates the paper's tables and figures from the ndpipe
// substrates.
//
//	ndpipe-bench -exp fig13          # one experiment
//	ndpipe-bench -exp fig12,fig13    # several
//	ndpipe-bench -all                # every experiment
//	ndpipe-bench -all -quick         # smoke-test sizes
//	ndpipe-bench -list               # available experiment IDs
//	ndpipe-bench -exp fig12 -json    # machine-readable results
package main

import (
	stdcsv "encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ndpipe/internal/experiments"
	"ndpipe/internal/tensor"
)

// jsonResult is the machine-readable form of one experiment run, committed
// as a baseline in BENCH_pipeline.json and diffable across PRs.
type jsonResult struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	Seconds    float64    `json:"seconds"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID or comma-separated list (fig4a..fig21, table1, table2)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment IDs")
		quick   = flag.Bool("quick", false, "shrink workloads to smoke-test size")
		seed    = flag.Int64("seed", 1, "random seed for accuracy experiments")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut = flag.Bool("json", false, "emit a JSON array of results instead of aligned tables")
		par     = flag.Int("parallelism", 0, "compute-kernel worker count (0=GOMAXPROCS)")
	)
	flag.Parse()
	tensor.SetParallelism(*par)

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	params := experiments.Params{Seed: *seed, Quick: *quick}
	reg := experiments.Registry()

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var results []jsonResult
	for _, id := range ids {
		start := time.Now()
		tbl, err := reg[id](params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		switch {
		case *jsonOut:
			results = append(results, jsonResult{
				Experiment: tbl.ID,
				Title:      tbl.Title,
				Header:     tbl.Header,
				Rows:       tbl.Rows,
				Notes:      tbl.Notes,
				Seconds:    elapsed,
			})
		case *csv:
			w := stdcsv.NewWriter(os.Stdout)
			_ = w.Write(append([]string{"experiment"}, tbl.Header...))
			for _, row := range tbl.Rows {
				_ = w.Write(append([]string{tbl.ID}, row...))
			}
			w.Flush()
		default:
			fmt.Print(tbl.String())
			fmt.Printf("(%s in %.1fs)\n\n", id, elapsed)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "encode:", err)
			os.Exit(1)
		}
	}
}
