// ndpipe-bench regenerates the paper's tables and figures from the ndpipe
// substrates.
//
//	ndpipe-bench -exp fig13          # one experiment
//	ndpipe-bench -all                # every experiment
//	ndpipe-bench -all -quick         # smoke-test sizes
//	ndpipe-bench -list               # available experiment IDs
package main

import (
	stdcsv "encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ndpipe/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID (fig4a..fig21, table1, table2)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment IDs")
		quick = flag.Bool("quick", false, "shrink workloads to smoke-test size")
		seed  = flag.Int64("seed", 1, "random seed for accuracy experiments")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	params := experiments.Params{Seed: *seed, Quick: *quick}
	reg := experiments.Registry()

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		if _, ok := reg[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := reg[id](params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			w := stdcsv.NewWriter(os.Stdout)
			_ = w.Write(append([]string{"experiment"}, tbl.Header...))
			for _, row := range tbl.Rows {
				_ = w.Write(append([]string{tbl.ID}, row...))
			}
			w.Flush()
		} else {
			fmt.Print(tbl.String())
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}
