// ndpipe-demo is the single-process analogue of the artifact appendix
// (§A.5/A.6): it spins up a Tuner and N PipeStores over loopback TCP, runs
// pipelined FT-DMP fine-tuning, distributes the model delta, and performs
// near-data offline inference — printing the same style of expected output
// the artifact documents.
//
//	ndpipe-demo -stores 3 -nrun 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/inferserver"
	"ndpipe/internal/labeldb"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/serve"
	"ndpipe/internal/tuner"
)

func main() {
	var (
		stores = flag.Int("stores", 3, "number of PipeStores")
		nrun   = flag.Int("nrun", 3, "pipelined FT-DMP runs")
		images = flag.Int("images", 6000, "photo-world population")
		seed   = flag.Int64("seed", 1, "world seed")

		serveUploads = flag.Int("serve-uploads", 0, "after training, push this many concurrent uploads through the serving gateway (0=skip)")
		serveBatch   = flag.Int("serve-max-batch", 64, "gateway: photos per coalesced batch")
		serveWait    = flag.Duration("serve-max-wait", 500*time.Microsecond, "gateway: max time a partial batch stays open")
	)
	flag.Parse()

	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(*seed)
	wcfg.InitialImages = *images
	world := dataset.NewWorld(wcfg)

	tn, err := tuner.New(cfg)
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, *stores) }()

	shards := world.Shard(*stores)
	for i := 0; i < *stores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("ps-%d", i), cfg)
		check(err)
		check(ps.Ingest(shards[i]))
		conn, err := net.Dial("tcp", ln.Addr().String())
		check(err)
		go func() { _ = ps.Serve(conn) }()
	}
	check(<-accepted)
	fmt.Printf("NDPipe demo: %d PipeStores x %d photos, Tuner at %s\n",
		*stores, world.NumImages() / *stores, ln.Addr())

	// Baseline accuracy before any training.
	test := world.FreshTestSet(1200)
	b1, b5 := tn.Evaluate(test, 5)
	fmt.Printf("model v0 accuracy: top-1 %.2f%%  top-5 %.2f%%\n", 100*b1, 100*b5)

	start := time.Now()
	rep, err := tn.FineTune(*nrun, 128, ftdmp.DefaultTrainOptions())
	check(err)
	ft := time.Since(start).Seconds()
	fmt.Printf("Feature extraction throughput (image/sec): %.2f\n", float64(rep.Images)/ft)
	fmt.Printf("Overall fine-tuning time (sec): %.2f\n", ft)
	fmt.Printf("Check-N-Run delta: %d B (%.1fx smaller than the full model)\n",
		rep.DeltaBytes, rep.TrafficReduction())
	fmt.Printf("Distributed trace: %s (every store's read/preproc/fecl spans, via /traces)\n", rep.Trace)

	a1, a5 := tn.Evaluate(test, 5)
	fmt.Printf("model v%d accuracy: top-1 %.2f%%  top-5 %.2f%%\n", rep.ModelVersion, 100*a1, 100*a5)

	start = time.Now()
	st, err := tn.OfflineInference(128)
	check(err)
	inf := time.Since(start).Seconds()
	fmt.Printf("[NDPipe] inference time: %.2fsec\n", inf)
	fmt.Printf("[NDPipe] inference throughput: %.2fIPS\n", float64(st.Total)/inf)
	fmt.Printf("[NDPipe] label database: %d entries, %.2f%% relabeled by v%d\n",
		tn.DB().Len(), 100*st.FixedFrac, st.ModelVersion)

	if *serveUploads > 0 {
		serveDemo(cfg, world, *serveUploads, *serveBatch, *serveWait, *seed)
	}
}

// serveDemo pushes a burst of concurrent uploads — a Zipf-popular mix of
// re-shared content under fresh photo IDs — through the online serving
// gateway and prints the throughput, tail latency, and batching/cache
// telemetry the gateway exists to provide.
func serveDemo(cfg core.ModelConfig, world *dataset.World, uploads, maxBatch int, maxWait time.Duration, seed int64) {
	nodes := make([]*pipestore.Node, 2)
	for i := range nodes {
		ps, err := pipestore.New(fmt.Sprintf("gw-%d", i), cfg)
		check(err)
		nodes[i] = ps
	}
	srv, err := inferserver.New(cfg, nodes, labeldb.New())
	check(err)
	gw, err := serve.New(srv, serve.Options{MaxBatch: maxBatch, MaxWait: maxWait})
	check(err)
	defer gw.Close()

	catalog := world.Images()
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(len(catalog)-1))
	stream := make([]dataset.Image, uploads)
	for i := range stream {
		img := catalog[z.Uint64()]
		img.ID = 3_000_000_000 + uint64(i)
		stream[i] = img
	}

	const clients = 64
	lats := make([]time.Duration, len(stream))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				t := time.Now()
				_, err := gw.UploadImage(stream[i])
				lats[i] = time.Since(t)
				check(err)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	st := gw.Stats()
	hitPct := 0.0
	if st.CacheHits+st.CacheMisses > 0 {
		hitPct = 100 * float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	fmt.Printf("[serve] %d uploads from %d clients: %.0f uploads/sec, p99 %.2fms\n",
		uploads, clients, float64(uploads)/wall, float64(p99.Microseconds())/1000)
	fmt.Printf("[serve] mean batch %.1f, cache hit %.1f%% (%d memoized), %d SLO violations\n",
		st.MeanBatch(), hitPct, st.CacheResultHits, st.SLOViolations)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndpipe-demo:", err)
		os.Exit(1)
	}
}
