// ndpipe-demo is the single-process analogue of the artifact appendix
// (§A.5/A.6): it spins up a Tuner and N PipeStores over loopback TCP, runs
// pipelined FT-DMP fine-tuning, distributes the model delta, and performs
// near-data offline inference — printing the same style of expected output
// the artifact documents.
//
//	ndpipe-demo -stores 3 -nrun 3
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/tuner"
)

func main() {
	var (
		stores = flag.Int("stores", 3, "number of PipeStores")
		nrun   = flag.Int("nrun", 3, "pipelined FT-DMP runs")
		images = flag.Int("images", 6000, "photo-world population")
		seed   = flag.Int64("seed", 1, "world seed")
	)
	flag.Parse()

	cfg := core.DefaultModelConfig()
	wcfg := dataset.DefaultConfig(*seed)
	wcfg.InitialImages = *images
	world := dataset.NewWorld(wcfg)

	tn, err := tuner.New(cfg)
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- tn.AcceptStores(ln, *stores) }()

	shards := world.Shard(*stores)
	for i := 0; i < *stores; i++ {
		ps, err := pipestore.New(fmt.Sprintf("ps-%d", i), cfg)
		check(err)
		check(ps.Ingest(shards[i]))
		conn, err := net.Dial("tcp", ln.Addr().String())
		check(err)
		go func() { _ = ps.Serve(conn) }()
	}
	check(<-accepted)
	fmt.Printf("NDPipe demo: %d PipeStores x %d photos, Tuner at %s\n",
		*stores, world.NumImages() / *stores, ln.Addr())

	// Baseline accuracy before any training.
	test := world.FreshTestSet(1200)
	b1, b5 := tn.Evaluate(test, 5)
	fmt.Printf("model v0 accuracy: top-1 %.2f%%  top-5 %.2f%%\n", 100*b1, 100*b5)

	start := time.Now()
	rep, err := tn.FineTune(*nrun, 128, ftdmp.DefaultTrainOptions())
	check(err)
	ft := time.Since(start).Seconds()
	fmt.Printf("Feature extraction throughput (image/sec): %.2f\n", float64(rep.Images)/ft)
	fmt.Printf("Overall fine-tuning time (sec): %.2f\n", ft)
	fmt.Printf("Check-N-Run delta: %d B (%.1fx smaller than the full model)\n",
		rep.DeltaBytes, rep.TrafficReduction())
	fmt.Printf("Distributed trace: %s (every store's read/preproc/fecl spans, via /traces)\n", rep.Trace)

	a1, a5 := tn.Evaluate(test, 5)
	fmt.Printf("model v%d accuracy: top-1 %.2f%%  top-5 %.2f%%\n", rep.ModelVersion, 100*a1, 100*a5)

	start = time.Now()
	st, err := tn.OfflineInference(128)
	check(err)
	inf := time.Since(start).Seconds()
	fmt.Printf("[NDPipe] inference time: %.2fsec\n", inf)
	fmt.Printf("[NDPipe] inference throughput: %.2fIPS\n", float64(st.Total)/inf)
	fmt.Printf("[NDPipe] label database: %d entries, %.2f%% relabeled by v%d\n",
		tn.DB().Len(), 100*st.FixedFrac, st.ModelVersion)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndpipe-demo:", err)
		os.Exit(1)
	}
}
