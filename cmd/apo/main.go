// apo is the Automated model Partitioning and Organization advisor (§5.3):
// given a model and deployment parameters it prints the best partition
// point per store count and Algorithm 1's recommended fleet size.
//
//	apo -model ResNet50 -max 20 -gbps 10 -images 1200000
package main

import (
	"flag"
	"fmt"
	"os"

	"ndpipe/internal/apo"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
)

func main() {
	var (
		name     = flag.String("model", "ResNet50", "model name (ShuffleNetV2, ResNet50, InceptionV3, ResNeXt101, ViT)")
		max      = flag.Int("max", 20, "maximum PipeStores to consider")
		gbps     = flag.Float64("gbps", 10, "network line rate (Gbps)")
		images   = flag.Int("images", 1_200_000, "training-set size")
		nrun     = flag.Int("nrun", 3, "pipeline depth")
		deadline = flag.Float64("deadline", 0, "if >0, also print the cheapest fleet meeting this training deadline (seconds)")
	)
	flag.Parse()

	m, err := model.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rec, err := apo.BestOrganization(apo.Config{
		Base: ftdmp.Config{
			Model:  m,
			Cut:    m.LastFrozen(),
			Images: *images,
			Nrun:   *nrun,
			Gbps:   *gbps,
		},
		MaxStores: *max,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("APO sweep for %s (%.0f Gbps, %d images, Nrun=%d)\n", m.Name, *gbps, *images, *nrun)
	fmt.Printf("%-7s %-8s %12s %12s %10s %12s\n", "stores", "cut", "T_ps(s)", "T_tuner(s)", "Tdiff(s)", "train(s)")
	for _, o := range rec.Options {
		mark := " "
		if o.Stores == rec.BestStores {
			mark = "*"
		}
		fmt.Printf("%-7d %-8s %12.2f %12.2f %10.2f %12.2f %s\n",
			o.Stores, o.CutName, o.StoreStageSec, o.TunerStageSec, o.TDiff, o.TotalSec, mark)
	}
	fmt.Printf("\nrecommended: %d PipeStores, partition at %s\n",
		rec.BestStores, m.CutName(rec.BestCut))

	if *deadline > 0 {
		opt, err := apo.CheapestMeetingDeadline(apo.Config{
			Base: ftdmp.Config{
				Model:  m,
				Cut:    m.LastFrozen(),
				Images: *images,
				Nrun:   *nrun,
				Gbps:   *gbps,
			},
			MaxStores: *max,
		}, *deadline, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cheapest fleet for a %.0fs deadline: %d x %s — %.1fs, $%.3f per job\n",
			*deadline, opt.Stores, opt.CutName, opt.TotalSec, opt.USD)
	}
}
