// Continuous training: the outdated-model scenario of §3.2 as a running
// service. The photo world drifts day by day; every second day NDPipe
// fine-tunes the classifier on recent uploads, while a frozen copy of the
// original model decays.
//
//	go run ./examples/continuous-training
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/nn"
)

func main() {
	cfg := dataset.DefaultConfig(11)
	cfg.InitialImages = 4000
	world := dataset.NewWorld(cfg)
	backbone := nn.NewFeatureExtractor(11, cfg.InputDim, 64, 32)
	rng := rand.New(rand.NewSource(12))

	feat := func(b *dataset.Batch) *dataset.Batch {
		return &dataset.Batch{X: backbone.Forward(b.X), Labels: b.Labels}
	}
	train := func(clf *nn.Network, b *dataset.Batch) {
		opt := ftdmp.DefaultTrainOptions()
		opt.Seed = rng.Int63()
		if _, err := ftdmp.FineTuneRuns(clf, []*dataset.Batch{b}, opt); err != nil {
			log.Fatal(err)
		}
	}

	// Day-0 model, deployed twice: one copy frozen, one continuously tuned.
	stale := nn.NewMLP("clf", []int{32, 128, cfg.MaxClasses}, rng)
	train(stale, feat(world.SampleStored(3000)))
	tuned := nn.NewMLP("clf", []int{32, 128, cfg.MaxClasses}, rng)
	if err := tuned.Restore(stale.TakeSnapshot()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("day  stale-top1  tuned-top1  photos  classes")
	for day := 0; day <= 14; day++ {
		if day > 0 {
			world.AdvanceDay()
			if day%2 == 0 {
				// NDPipe: near-data fine-tuning on the recent window.
				train(tuned, feat(world.SampleRecent(3000, 5)))
			}
		}
		test := feat(world.FreshTestSet(1500))
		s1, _ := nn.Accuracy(stale, test.X, test.Labels, 5)
		t1, _ := nn.Accuracy(tuned, test.X, test.Labels, 5)
		fmt.Printf("%3d  %9.1f%%  %9.1f%%  %6d  %7d\n",
			day, 100*s1, 100*t1, world.NumImages(), world.ActiveClasses())
	}
}
