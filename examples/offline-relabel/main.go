// Offline relabel: the outdated-label problem of §3.3. Photos indexed by an
// old model keep stale labels until offline inference refreshes them; this
// example measures how many labels each model refresh fixes (Table 1) and
// shows the label database serving search queries throughout.
//
//	go run ./examples/offline-relabel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/tuner"
)

func main() {
	wcfg := dataset.DefaultConfig(21)
	wcfg.InitialImages = 3000
	world := dataset.NewWorld(wcfg)

	cfg := core.DefaultModelConfig()
	tn, err := tuner.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 2) }()
	for i, shard := range world.Shard(2) {
		ps, err := pipestore.New(fmt.Sprintf("ps-%d", i), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := ps.Ingest(shard); err != nil {
			log.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = ps.Serve(conn) }()
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	opt := ftdmp.DefaultTrainOptions()
	// M0: first model, first full labeling pass.
	if _, err := tn.FineTune(1, 128, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := tn.OfflineInference(128); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M0 indexed %d photos\n", tn.DB().Len())

	// Simulate biweekly retraining; offline inference fixes stale labels.
	rng := rand.New(rand.NewSource(5))
	for m := 1; m <= 3; m++ {
		for d := 0; d < 14; d++ {
			world.AdvanceDay()
		}
		opt.Seed = rng.Int63()
		rep, err := tn.FineTune(2, 128, opt)
		if err != nil {
			log.Fatal(err)
		}
		outdatedBefore := tn.DB().OutdatedCount(rep.ModelVersion)
		st, err := tn.OfflineInference(128)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("M%d: %d outdated labels refreshed, %.2f%% changed by the new model\n",
			m, outdatedBefore, 100*st.FixedFrac)
	}

	// The label index keeps serving user queries the whole time.
	for label := 0; label < 3; label++ {
		fmt.Printf("search(label=%d): %d photos\n", label, len(tn.DB().Search(label)))
	}
}
