// Cluster planning: use APO (§5.3) and the calibrated simulator to size an
// NDPipe deployment before buying hardware — what-if analysis over models,
// store counts, bandwidths and accelerators, with energy and cost.
//
//	go run ./examples/cluster-planning
package main

import (
	"fmt"
	"log"

	"ndpipe/internal/apo"
	"ndpipe/internal/cluster"
	"ndpipe/internal/cost"
	"ndpipe/internal/energy"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
)

func main() {
	const images = 1_200_000

	fmt.Println("APO recommendations (10 Gbps, 1.2M-image fine-tune):")
	for _, m := range model.Zoo() {
		rec, err := apo.BestOrganization(apo.Config{
			Base:      ftdmp.Config{Model: m, Cut: m.LastFrozen(), Images: images, Nrun: 3},
			MaxStores: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		best := rec.Options[rec.BestStores-1]
		fmt.Printf("  %-13s → %2d PipeStores at %-7s (train %.0fs, Tdiff %.1fs)\n",
			m.Name, rec.BestStores, m.CutName(rec.BestCut), best.TotalSec, best.TDiff)
	}

	// What-if: ResNet50 at the recommended size — time, energy, dollars,
	// on T4 PipeStores vs Inferentia PipeStores.
	m := model.ResNet50()
	fmt.Printf("\nWhat-if for %s:\n", m.Name)
	for _, hw := range []struct {
		name  string
		store *cluster.Server
	}{
		{"T4 PipeStores", cluster.PipeStore(10)},
		{"Inferentia PipeStores", cluster.PipeStoreInf1(10)},
	} {
		for _, n := range []int{4, 8, 16} {
			cfg := ftdmp.Config{Model: m, Cut: m.LastFrozen(), Stores: n, Nrun: 3, Images: images, Store: hw.store}
			res, err := ftdmp.Simulate(cfg)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := energy.Compute([]energy.ServerLoad{
				{Server: hw.store, Count: n, Duration: res.TotalSec,
					AccelBusy: res.StoreGPUBusy, CPUBusy: res.StoreCPUBusy,
					DiskBusy: res.StoreDiskBusy, CPUCoresUsed: 2},
				{Server: cluster.Tuner(10), Duration: res.TotalSec,
					AccelBusy: res.TunerGPUBusy, CPUBusy: res.TunerCPUBusy, CPUCoresUsed: 2},
			})
			if err != nil {
				log.Fatal(err)
			}
			usd, err := cost.FineTuneNDPipe(hw.store, cluster.Tuner(10), n, res.TotalSec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s n=%2d: %6.0fs  %7.0f IPS/kJ  $%.2f\n",
				hw.name, n, res.TotalSec, energy.IPSPerKJ(images, rep), usd)
		}
	}
}
