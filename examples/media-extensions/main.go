// Media extensions: the §7.1 discussion in running code. NDPipe's pipeline
// is media-agnostic once a preprocessor turns content into fixed-width
// vectors; this example adapts it to video (key-frame extraction), audio
// (spectrogram transformation) and documents (text embeddings), training a
// small classifier on each near-data feature stream.
//
//	go run ./examples/media-extensions
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/media"
	"ndpipe/internal/nn"
	"ndpipe/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	video(rng)
	audio(rng)
	documents(rng)
}

// video: detect scene cuts and analyze only key frames.
func video(rng *rand.Rand) {
	const dim, frames = 24, 60
	clip := &media.Video{}
	scene := make([]float64, dim)
	cuts := map[int]bool{20: true, 45: true}
	for i := 0; i < frames; i++ {
		if i == 0 || cuts[i] {
			for j := range scene {
				scene[j] = rng.NormFloat64() * 2
			}
		}
		f := make([]float64, dim)
		for j := range f {
			f[j] = scene[j] + rng.NormFloat64()*0.02
		}
		clip.Frames = append(clip.Frames, f)
	}
	p := &media.VideoPreprocessor{FrameDim: dim, K: 3}
	keys, err := p.Preprocess(media.EncodeVideo(clip))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video: %d frames → %d key frames at %v (true cuts: 0, 20, 45)\n",
		frames, len(keys), media.KeyFrameIndices(clip, 3))
}

// audio: classify tones by genre-like frequency class via spectrograms.
func audio(rng *rand.Rand) {
	const window, bands, classes = 128, 16, 3
	freqs := []float64{0.03, 0.12, 0.30} // three "genres"
	sampleVec := func(c int) []float64 {
		f := freqs[c] * (1 + rng.NormFloat64()*0.05)
		sg := media.Spectrogram(media.Tone(f, window, 1+rng.NormFloat64()*0.1), window, bands)
		return sg[0]
	}
	train := tensor.New(300, bands)
	labels := make([]int, 300)
	for i := 0; i < 300; i++ {
		c := i % classes
		labels[i] = c
		copy(train.Row(i), sampleVec(c))
	}
	clf := nn.NewMLP("audio", []int{bands, 32, classes}, rng)
	if _, err := ftdmp.FineTuneRuns(clf, []*dataset.Batch{{X: train, Labels: labels}}, ftdmp.DefaultTrainOptions()); err != nil {
		log.Fatal(err)
	}
	test := tensor.New(90, bands)
	tl := make([]int, 90)
	for i := range tl {
		c := i % classes
		tl[i] = c
		copy(test.Row(i), sampleVec(c))
	}
	top1, _ := nn.Accuracy(clf, test, tl, 1)
	fmt.Printf("audio: 3-class tone classification via spectrograms: top-1 %.1f%%\n", 100*top1)
}

// documents: classify short texts by topic via hashed embeddings.
func documents(rng *rand.Rand) {
	const dim, classes = 48, 2
	topics := [][]string{
		{"storage server disk array throughput raid filesystem cache block volume latency",
			"near data processing offload accelerator pipeline bandwidth network gpu inference"},
		{"sunset beach holiday camera portrait family wedding smile vacation picnic",
			"mountain hiking forest lake photo landscape travel snapshot album memories"},
	}
	sampleText := func(c int) string {
		words := media.Tokenize(topics[c][rng.Intn(2)])
		out := ""
		for k := 0; k < 8; k++ {
			out += words[rng.Intn(len(words))] + " "
		}
		return out
	}
	p := &media.DocumentPreprocessor{EmbedDim: dim}
	mk := func(n int) (*tensor.Matrix, []int) {
		x := tensor.New(n, dim)
		l := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % classes
			l[i] = c
			vecs, err := p.Preprocess([]byte(sampleText(c)))
			if err != nil {
				log.Fatal(err)
			}
			copy(x.Row(i), vecs[0])
		}
		return x, l
	}
	x, l := mk(240)
	clf := nn.NewMLP("doc", []int{dim, 32, classes}, rng)
	if _, err := ftdmp.FineTuneRuns(clf, []*dataset.Batch{{X: x, Labels: l}}, ftdmp.DefaultTrainOptions()); err != nil {
		log.Fatal(err)
	}
	tx, tl := mk(80)
	top1, _ := nn.Accuracy(clf, tx, tl, 1)
	fmt.Printf("documents: 2-topic classification via hashed embeddings: top-1 %.1f%%\n", 100*top1)
}
