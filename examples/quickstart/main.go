// Quickstart: the smallest end-to-end use of the ndpipe public API.
//
// It builds a synthetic photo world, stands up an in-process NDPipe
// deployment (1 Tuner + 2 PipeStores over loopback TCP), fine-tunes the
// classifier with pipelined FT-DMP, and relabels the stored photos with
// near-data offline inference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"

	"ndpipe/internal/core"
	"ndpipe/internal/dataset"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/pipestore"
	"ndpipe/internal/tuner"
)

func main() {
	// 1. A photo population: 3,000 synthetic photos in 20 categories.
	wcfg := dataset.DefaultConfig(7)
	wcfg.InitialImages = 3000
	world := dataset.NewWorld(wcfg)

	// 2. The deployment: one Tuner, two PipeStores, loopback TCP.
	cfg := core.DefaultModelConfig()
	tn, err := tuner.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() { done <- tn.AcceptStores(ln, 2) }()

	for i, shard := range world.Shard(2) {
		ps, err := pipestore.New(fmt.Sprintf("ps-%d", i), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := ps.Ingest(shard); err != nil {
			log.Fatal(err)
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = ps.Serve(conn) }()
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// 3. Fine-tune with pipelined FT-DMP (Nrun = 2).
	rep, err := tn.FineTune(2, 128, ftdmp.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine-tuned on %d photos over %d pipelined runs (%d epochs)\n",
		rep.Images, rep.Runs, rep.Epochs)
	fmt.Printf("feature traffic: %.1f KB/photo; model delta %.1fx smaller than the full model\n",
		float64(rep.FeatureBytes)/float64(rep.Images)/1e3, rep.TrafficReduction())

	// 4. Evaluate and relabel.
	test := world.FreshTestSet(800)
	top1, top5 := tn.Evaluate(test, 5)
	fmt.Printf("accuracy: top-1 %.1f%%  top-5 %.1f%%\n", 100*top1, 100*top5)

	st, err := tn.OfflineInference(128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline inference relabeled %d photos; label DB holds %d entries\n",
		st.Total, tn.DB().Len())
}
