// Benchmarks regenerating every table and figure of the paper's evaluation
// (quick-sized; run cmd/ndpipe-bench for full-size output), plus
// micro-benchmarks of the core substrates.
//
//	go test -bench=. -benchmem
package ndpipe_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ndpipe/internal/cluster"
	"ndpipe/internal/delta"
	"ndpipe/internal/experiments"
	"ndpipe/internal/ftdmp"
	"ndpipe/internal/model"
	"ndpipe/internal/modelstore"
	"ndpipe/internal/nn"
	"ndpipe/internal/npe"
	"ndpipe/internal/sim"
	"ndpipe/internal/tensor"
)

// benchExperiment runs one paper experiment at quick size and reports its
// row count so the work cannot be optimized away.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	fn := experiments.Registry()[id]
	if fn == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	p := experiments.Params{Seed: 1, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per table and figure in the paper's evaluation.

func BenchmarkFig04aOutdatedModel(b *testing.B)     { benchExperiment(b, "fig4a") }
func BenchmarkFig04bDatasetSize(b *testing.B)       { benchExperiment(b, "fig4b") }
func BenchmarkTable1OutdatedLabels(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig05NetworkBottleneck(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig06PhaseBreakdown(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig09LayerOffloading(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig11APOOrganization(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12NPEAblation(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13InferenceScaling(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14InferencePower(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15TrainingScaling(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16TrainingEfficiency(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17PipelinedTraining(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkTable2AccuracyMatrix(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig18BandwidthSweep(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig19BatchSize(b *testing.B)          { benchExperiment(b, "fig19") }
func BenchmarkFig20Inferentia(b *testing.B)         { benchExperiment(b, "fig20") }
func BenchmarkFig21CostAnalysis(b *testing.B)       { benchExperiment(b, "fig21") }

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkTensorMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	out := tensor.New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

// BenchmarkTensorMatMulGrid sweeps square-product size × kernel parallelism
// (sub-benchmark names select slices, e.g. -bench 'Grid/n=256').
func BenchmarkTensorMatMulGrid(b *testing.B) {
	defer tensor.SetParallelism(0)
	for _, n := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(1))
		x := tensor.New(n, n)
		y := tensor.New(n, n)
		x.RandNormal(rng, 1)
		y.RandNormal(rng, 1)
		out := tensor.New(n, n)
		for _, par := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/p=%d", n, par), func(b *testing.B) {
				tensor.SetParallelism(par)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.MatMulInto(out, x, y)
				}
			})
		}
	}
}

func BenchmarkNNTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP("clf", []int{32, 128, 26}, rng)
	opt := nn.NewSGD(0.1, 0.9)
	x := tensor.New(128, 32)
	x.RandNormal(rng, 1)
	labels := make([]int, 128)
	for i := range labels {
		labels[i] = i % 26
	}
	// Warm-up sizes the layer scratch; steady state then runs at 0 allocs/op.
	nn.TrainBatch(net, opt, x, labels)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.TrainBatch(net, opt, x, labels)
	}
}

func BenchmarkSimPipeline10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		r := eng.NewResource("gpu", 1)
		q := eng.NewQueue("q", 2)
		eng.Go("prod", func(p *sim.Proc) {
			for j := 0; j < 5000; j++ {
				q.Put(p, j)
			}
		})
		eng.Go("cons", func(p *sim.Proc) {
			for j := 0; j < 5000; j++ {
				q.Get(p)
				r.Use(p, 0.001)
			}
		})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNPESimulatePipeline(b *testing.B) {
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	for i := 0; i < b.N; i++ {
		if _, err := npe.SimulatePipeline(ps, m, m.TotalGFLOPs(), npe.OfflineInference, npe.Optimized(), 50_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFTDMPSimulate(b *testing.B) {
	m := model.ResNet50()
	cfg := ftdmp.Config{Model: m, Cut: m.LastFrozen(), Stores: 8, Nrun: 3, Images: 1_200_000}
	for i := 0; i < b.N; i++ {
		if _, err := ftdmp.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaDiffEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewMLP("m", []int{64, 256, 26}, rng)
	old := net.TakeSnapshot()
	cur := net.TakeSnapshot()
	for _, m := range cur {
		for i := range m.Data {
			if rng.Float64() < 0.05 {
				m.Data[i] += rng.NormFloat64()
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := delta.Diff(old, cur, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationPipelinedVsSerialNPE(b *testing.B) {
	ps := cluster.PipeStore(10)
	m := model.ResNet50()
	for _, pipelined := range []bool{true, false} {
		name := "serial"
		if pipelined {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			opt := npe.Optimized()
			opt.Pipelined = pipelined
			for i := 0; i < b.N; i++ {
				rep, err := npe.SimulatePipeline(ps, m, m.TotalGFLOPs(), npe.OfflineInference, opt, 20_000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.IPS, "simIPS")
			}
		})
	}
}

func BenchmarkAblationNrun(b *testing.B) {
	m := model.ResNet50()
	for _, nrun := range []int{1, 2, 3, 6} {
		b.Run(benchName("nrun", nrun), func(b *testing.B) {
			cfg := ftdmp.Config{Model: m, Cut: m.LastFrozen(), Stores: 4, Nrun: nrun, Images: 1_200_000}
			for i := 0; i < b.N; i++ {
				res, err := ftdmp.Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TotalSec, "simTrainSec")
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + string(rune('0'+v))
}

// BenchmarkAblationLinkDiscipline compares the FCFS link against the
// processor-sharing FairLink on an N-stores→Tuner feature-transfer pattern.
// With synchronized batch producers, processor sharing aligns completions
// and lets the link idle during the compute gaps, while FCFS interleaves
// transfers with other stores' extraction — so the FCFS model the figures
// use is the *optimistic* (and simpler) choice; both disciplines agree when
// transfers fully overlap (see TestFairVsFCFSAggregate).
func BenchmarkAblationLinkDiscipline(b *testing.B) {
	const stores, batches = 8, 50
	const bytesPerBatch = 512 * 4096
	for _, fair := range []bool{false, true} {
		name := "fcfs"
		if fair {
			name = "fair"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.New()
				var fl *sim.FairLink
				var fc *sim.Link
				if fair {
					fl = eng.NewFairLink("tuner-in", 1.25e9)
				} else {
					fc = eng.NewLink("tuner-in", 1.25e9, 0)
				}
				for s := 0; s < stores; s++ {
					eng.Go("store", func(p *sim.Proc) {
						for k := 0; k < batches; k++ {
							p.Wait(0.01) // feature extraction
							if fair {
								fl.Transfer(p, bytesPerBatch)
							} else {
								fc.Transfer(p, bytesPerBatch)
							}
						}
					})
				}
				end, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(end, "simSec")
			}
		})
	}
}

func BenchmarkHeteroEstimate(b *testing.B) {
	fleet := []*cluster.Server{
		cluster.PipeStore(10), cluster.PipeStore(10),
		cluster.PipeStoreInf1(10), cluster.PipeStoreInf1(10),
	}
	m := model.ResNet50()
	cfg := ftdmp.HeteroConfig{
		Base:  ftdmp.Config{Model: m, Cut: m.LastFrozen(), Images: 1_200_000, Nrun: 3},
		Fleet: fleet,
	}
	for i := 0; i < b.N; i++ {
		res, err := ftdmp.EstimateHetero(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalSec, "simTrainSec")
	}
}

func BenchmarkModelStoreCatchUp(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	net := nn.NewMLP("clf", []int{32, 128, 26}, rng)
	st := modelstore.New(net.TakeSnapshot())
	for v := 0; v < 10; v++ {
		for _, p := range net.Params() {
			for j := range p.W.Data {
				if rng.Float64() < 0.3 {
					p.W.Data[j] += rng.NormFloat64() * 0.05
				}
			}
		}
		if _, err := st.Append(net.TakeSnapshot()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, _, err := st.CatchUp(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(blob)), "blobBytes")
	}
}
